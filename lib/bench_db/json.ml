type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

type state = { src : string; mutable pos : int }

let error st fmt =
  Printf.ksprintf
    (fun m ->
      let line = 1 + String.fold_left
        (fun acc c -> if c = '\n' then acc + 1 else acc)
        0 (String.sub st.src 0 (min st.pos (String.length st.src)))
      in
      raise (Parse_error (Printf.sprintf "line %d: %s" line m)))
    fmt

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && (match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  skip_ws st;
  match peek st with
  | Some c' when c' = c -> st.pos <- st.pos + 1
  | Some c' -> error st "expected %c, found %c" c c'
  | None -> error st "expected %c, found end of input" c

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else error st "bad literal"

(* UTF-8 encode one scalar value (surrogate pairs are handled by the
   caller) *)
let add_utf8 b code =
  if code < 0x80 then Buffer.add_char b (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_hex4 st =
  if st.pos + 4 > String.length st.src then error st "short \\u escape";
  let s = String.sub st.src st.pos 4 in
  match int_of_string_opt ("0x" ^ s) with
  | Some code ->
    st.pos <- st.pos + 4;
    code
  | None -> error st "bad \\u escape %S" s

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> error st "dangling escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'u' ->
          let code = parse_hex4 st in
          let code =
            (* high surrogate followed by \uDCxx low surrogate *)
            if code >= 0xD800 && code <= 0xDBFF
               && st.pos + 6 <= String.length st.src
               && st.src.[st.pos] = '\\' && st.src.[st.pos + 1] = 'u'
            then begin
              st.pos <- st.pos + 2;
              let low = parse_hex4 st in
              if low >= 0xDC00 && low <= 0xDFFF then
                0x10000 + ((code - 0xD800) lsl 10) + (low - 0xDC00)
              else error st "unpaired surrogate"
            end
            else code
          in
          add_utf8 b code
        | c -> error st "unknown escape \\%c" c));
      go ()
    | Some c ->
      Buffer.add_char b c;
      st.pos <- st.pos + 1;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while st.pos < String.length st.src && is_num st.src.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let lexeme = String.sub st.src start (st.pos - start) in
  match int_of_string_opt lexeme with
  | Some n -> Int n
  | None -> (
    match float_of_string_opt lexeme with
    | Some f -> Float f
    | None -> error st "bad number %S" lexeme)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "expected a value, found end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let fields = ref [] in
      let continue = ref true in
      while !continue do
        skip_ws st;
        let key = parse_string st in
        expect st ':';
        let v = parse_value st in
        fields := (key, v) :: !fields;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1
        | Some '}' ->
          st.pos <- st.pos + 1;
          continue := false
        | _ -> error st "expected , or } in object"
      done;
      Obj (List.rev !fields)
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let items = ref [] in
      let continue = ref true in
      while !continue do
        let v = parse_value st in
        items := v :: !items;
        skip_ws st;
        match peek st with
        | Some ',' -> st.pos <- st.pos + 1
        | Some ']' ->
          st.pos <- st.pos + 1;
          continue := false
        | _ -> error st "expected , or ] in array"
      done;
      Arr (List.rev !items)
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> error st "unexpected character %c" c

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then error st "trailing garbage";
  v

let parse_file path =
  let ic = open_in_bin path in
  let src =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse src

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let escape_string s =
  let b = Buffer.create (String.length s + 8) in
  escape_into b s;
  Buffer.contents b

let unescape_string s =
  match parse s with Str v -> Some v | _ | (exception Parse_error _) -> None

let float_lexeme f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f (* keep the float-ness: 2.0, not 2 *)
  else
    (* shortest lexeme that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?(compact = true) v =
  let b = Buffer.create 256 in
  let rec go indent v =
    let nl i =
      if not compact then begin
        Buffer.add_char b '\n';
        Buffer.add_string b (String.make i ' ')
      end
    in
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int n -> Buffer.add_string b (string_of_int n)
    | Float f -> Buffer.add_string b (float_lexeme f)
    | Str s -> escape_into b s
    | Arr [] -> Buffer.add_string b "[]"
    | Arr items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          go (indent + 2) v)
        items;
      nl indent;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          nl (indent + 2);
          escape_into b k;
          Buffer.add_char b ':';
          if not compact then Buffer.add_char b ' ';
          go (indent + 2) v)
        fields;
      nl indent;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Str x, Str y -> String.equal x y
  | Arr x, Arr y -> List.length x = List.length y && List.for_all2 equal x y
  | Obj x, Obj y ->
    List.length x = List.length y
    && List.for_all2
         (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
         x y
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let str = function Str s -> Some s | _ -> None

let num = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None

let int = function Int n -> Some n | _ -> None
let bool = function Bool b -> Some b | _ -> None
let arr = function Arr items -> Some items | _ -> None
let obj = function Obj fields -> Some fields | _ -> None
