let load path =
  if not (Sys.file_exists path) then Ok []
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | line ->
            let line = String.trim line in
            if line = "" then go (lineno + 1) acc
            else (
              match Record.of_line line with
              | Ok r -> go (lineno + 1) (r :: acc)
              | Error m ->
                Error (Printf.sprintf "%s:%d: %s" path lineno m))
        in
        match go 1 [] with
        | Ok records ->
          Ok
            (List.stable_sort
               (fun (a : Record.t) b -> compare a.Record.r_seq b.Record.r_seq)
               records)
        | Error _ as e -> e)
  end

let append path r =
  let dir = Filename.dirname path in
  if dir <> "." && dir <> "" && not (Sys.file_exists dir) then
    Sys.mkdir dir 0o755;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Record.to_line r);
      output_char oc '\n';
      flush oc)

let mem records ~label =
  List.exists (fun (r : Record.t) -> String.equal r.Record.r_label label) records

type import_outcome =
  | Added of Record.t
  | Skipped of string
  | Failed of string

let import_files ?gate_wall ~history paths =
  let existing =
    match load history with Ok rs -> ref rs | Error _ -> ref []
  in
  List.map
    (fun path ->
      match Import.of_file ?gate_wall path with
      | Error m -> (path, Failed m)
      | Ok r ->
        if mem !existing ~label:r.Record.r_label then
          (path, Skipped r.Record.r_label)
        else begin
          append history r;
          existing := r :: !existing;
          (path, Added r)
        end)
    paths
