(** The append-only time series: one {!Record.t} per line of a [.jsonl]
    file, the single normalized store behind reports and gates.

    Lines are flushed as written (a killed writer leaves a readable
    prefix, like {!Driver.Manifest}) and the file is append-only by
    convention: importers never rewrite history, they skip labels that
    are already present — re-running [bromc bench import] is
    idempotent. *)

val load : string -> (Record.t list, string) result
(** Records sorted by [r_seq] (stable for equal keys).  A missing file
    is an empty history; a malformed line is an error naming the line
    number. *)

val append : string -> Record.t -> unit
(** Append one record line, creating the file (and its directory) if
    needed. *)

val mem : Record.t list -> label:string -> bool

type import_outcome =
  | Added of Record.t
  | Skipped of string  (** label already present *)
  | Failed of string   (** importer error *)

val import_files :
  ?gate_wall:bool -> history:string -> string list ->
  (string * import_outcome) list
(** Import each snapshot file in order, appending records whose labels
    are new.  Returns one outcome per input path. *)
