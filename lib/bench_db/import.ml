let ( let* ) = Result.bind

let seq_of_filename path =
  let base = Filename.basename path in
  let prefix = "BENCH_PR" in
  if String.length base > String.length prefix
     && String.sub base 0 (String.length prefix) = prefix
  then
    let rest = String.sub base (String.length prefix)
        (String.length base - String.length prefix) in
    let digits = String.to_seq rest
      |> Seq.take_while (fun c -> c >= '0' && c <= '9')
      |> String.of_seq
    in
    int_of_string_opt digits
  else None

let num_field j name = Option.bind (Json.member name j) Json.num

let require j name =
  match num_field j name with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing numeric field %S" name)

(* sum a numeric field over the "workloads" array; [None] when the field
   is absent from every row *)
let sum_workloads j name =
  match Option.bind (Json.member "workloads" j) Json.arr with
  | None | Some [] -> None
  | Some rows ->
    let vals = List.filter_map (fun row -> num_field row name) rows in
    if vals = [] then None else Some (List.fold_left ( +. ) 0. vals)

(* ------------------------------------------------------------------ *)
(* Suite matrix shape: PR 1, 2, 4, 5, 6                                 *)
(* ------------------------------------------------------------------ *)

(* Tolerances, in percent.  Wall-derived speedup ratios carry the noise
   of two wall clocks, so they get a wide band; the reduction
   percentages are deterministic simulator counts and get a tight one;
   correctness tallies get zero. *)
let tol_speedup = 15.
let tol_reduction = 2.5
let tol_wall = 25.

let aggregate_reduction j ~orig ~reord =
  match (sum_workloads j orig, sum_workloads j reord) with
  | Some o, Some r when o > 0. -> Some (100. *. (r -. o) /. o)
  | _ -> None

let suite_metrics ~gate_wall j =
  let m = Record.metric in
  let wall_metric key name =
    Option.map
      (fun v ->
        m ~unit_:"s" ~dir:Record.Lower ~gate:gate_wall ~floor:0.25
          ~tolerance:tol_wall name v)
      (num_field j key)
  in
  let backends = Json.member "backends" j in
  let backend_speedup key name =
    Option.bind backends (fun b ->
        Option.map
          (fun v ->
            m ~unit_:"x" ~dir:Record.Higher ~gate:true ~floor:0.02
              ~tolerance:tol_speedup name v)
          (num_field b key))
  in
  let backend_wall key name =
    Option.bind backends (fun b ->
        Option.map
          (fun v ->
            m ~unit_:"s" ~dir:Record.Lower ~gate:gate_wall ~floor:0.25
              ~tolerance:tol_wall name v)
          (num_field b key))
  in
  let outcomes = Json.member "outcomes" j in
  let failed_jobs =
    Option.bind outcomes (fun o ->
        let g k = Option.value ~default:0. (num_field o k) in
        if num_field o "ok" = None then None
        else
          Some
            (m ~dir:Record.Lower ~gate:true ~floor:0. ~tolerance:0.
               "suite.failed_jobs"
               (g "trap" +. g "timeout" +. g "crash" +. g "gave_up")))
  in
  let reductions =
    [
      ( "suite.insn_reduction_pct",
        aggregate_reduction j ~orig:"orig_insns" ~reord:"reord_insns" );
      ( "suite.branch_reduction_pct",
        aggregate_reduction j ~orig:"orig_branches" ~reord:"reord_branches" );
    ]
    |> List.filter_map (fun (name, v) ->
           Option.map
             (fun v ->
               m ~unit_:"pct" ~dir:Record.Lower ~gate:true ~floor:0.2
                 ~tolerance:tol_reduction name v)
             v)
  in
  let detection =
    match sum_workloads j "extra_facts_seqs" with
    | None -> []
    | Some v ->
      [
        m ~dir:Record.Higher ~gate:true ~floor:0. ~tolerance:0.
          "detection.extra_facts_seqs" v;
      ]
  in
  let workload_count =
    match Option.bind (Json.member "workloads" j) Json.arr with
    | Some rows when rows <> [] ->
      [ m "suite.workloads" (float_of_int (List.length rows)) ]
    | _ -> []
  in
  List.filter_map Fun.id
    [
      wall_metric "matrix_wall_seconds" "suite.matrix_wall_seconds";
      wall_metric "harness_wall_seconds" "suite.harness_wall_seconds";
      backend_speedup "compiled_vs_reference_speedup"
        "backends.compiled_vs_reference";
      backend_speedup "compiled_vs_predecoded_speedup"
        "backends.compiled_vs_predecoded";
      backend_speedup "native_vs_reference_speedup"
        "backends.native_vs_reference";
      backend_wall "reference_measure_seconds" "backends.reference_seconds";
      backend_wall "predecoded_measure_seconds" "backends.predecoded_seconds";
      backend_wall "compiled_measure_seconds" "backends.compiled_seconds";
      backend_wall "native_measure_seconds" "backends.native_seconds";
      backend_wall "native_codegen_seconds" "backends.native_codegen_seconds";
      failed_jobs;
    ]
  @ reductions @ detection @ workload_count

let import_suite ?seq ?label ?commit ~gate_wall ~source j =
  let* pr =
    match (seq, num_field j "pr") with
    | Some s, _ -> Ok s
    | None, Some v -> Ok (int_of_float v)
    | None, None -> Error "no sequence number: payload has no \"pr\" field"
  in
  let fast =
    Option.value ~default:false (Option.bind (Json.member "fast" j) Json.bool)
  in
  let context = if fast then "suite-fast" else "suite-full" in
  let runs =
    match
      Option.bind (Json.member "backends" j) (fun b ->
          num_field b "runs_per_engine")
    with
    | Some n -> int_of_float n
    | None -> 1
  in
  let metrics = suite_metrics ~gate_wall j in
  if metrics = [] then Error "suite snapshot yielded no metrics"
  else
    Ok
      (Record.make ?commit ~source ~runs ~seq:pr
         ~label:(Option.value ~default:(Printf.sprintf "PR%d" pr) label)
         ~context metrics)

(* ------------------------------------------------------------------ *)
(* Serve/replay shape: PR 7                                             *)
(* ------------------------------------------------------------------ *)

let import_serve ?seq ?label ?commit ~gate_wall ~source j =
  let* seq =
    match seq with
    | Some s -> Ok s
    | None -> Error "serve snapshot carries no sequence number; pass one"
  in
  let m = Record.metric in
  let g key name ~unit_ ~dir ~gate ~floor ~tolerance =
    Option.map (fun v -> m ~unit_ ~dir ~gate ~floor ~tolerance name v)
      (num_field j key)
  in
  let hit_pct =
    match Option.bind (Json.member "caches" j) Json.arr with
    | None -> None
    | Some caches ->
      List.find_opt
        (fun c -> Option.bind (Json.member "name" c) Json.str = Some "programs")
        caches
      |> Option.map (fun c ->
             let hits = Option.value ~default:0. (num_field c "hits") in
             let misses = Option.value ~default:0. (num_field c "misses") in
             let total = hits +. misses in
             m ~unit_:"pct" ~dir:Record.Higher ~gate:true ~floor:0.5
               ~tolerance:5. "serve.program_cache_hit_pct"
               (if total = 0. then 0. else 100. *. hits /. total))
  in
  let metrics =
    List.filter_map Fun.id
      [
        g "throughput_rps" "serve.throughput_rps" ~unit_:"rps"
          ~dir:Record.Higher ~gate:true ~floor:10. ~tolerance:20.;
        g "p50_ms" "serve.p50_ms" ~unit_:"ms" ~dir:Record.Lower
          ~gate:false ~floor:0.05 ~tolerance:50.;
        g "p99_ms" "serve.p99_ms" ~unit_:"ms" ~dir:Record.Lower ~gate:true
          ~floor:0.5 ~tolerance:25.;
        g "warm_vs_cold_ratio" "serve.warm_vs_cold" ~unit_:"x"
          ~dir:Record.Higher ~gate:true ~floor:0.5 ~tolerance:20.;
        g "cold_ms_per_request" "serve.cold_ms_per_request" ~unit_:"ms"
          ~dir:Record.Lower ~gate:gate_wall ~floor:1. ~tolerance:tol_wall;
        g "failed" "serve.failed" ~unit_:"count" ~dir:Record.Lower ~gate:true
          ~floor:0. ~tolerance:0.;
        g "mismatches" "serve.oracle_mismatches" ~unit_:"count"
          ~dir:Record.Lower ~gate:true ~floor:0. ~tolerance:0.;
        g "requests" "serve.requests" ~unit_:"count" ~dir:Record.Higher
          ~gate:false ~floor:0. ~tolerance:0.;
        hit_pct;
        Option.map
          (fun reopts ->
            m ~dir:Record.Higher "serve.reopts" (float_of_int reopts))
          (Option.bind (Json.member "server" j) (fun s ->
               Option.map int_of_float (num_field s "reopts")));
        (* PR 10: chaos certification — escapes are a hard-zero gate *)
        Option.bind (Json.member "chaos" j) (fun c ->
            Option.map
              (fun v ->
                m ~unit_:"count" ~dir:Record.Lower ~gate:true ~floor:0.
                  ~tolerance:0. "serve.chaos_escapes" v)
              (num_field c "escapes"));
        Option.bind (Json.member "chaos" j) (fun c ->
            Option.map
              (fun v ->
                m ~unit_:"count" ~dir:Record.Higher "serve.chaos_faults" v)
              (num_field c "planned"));
        (* PR 10: durability — the restore must be byte-exact *)
        Option.bind (Json.member "durability" j) (fun d ->
            Option.map
              (fun v ->
                m ~unit_:"count" ~dir:Record.Higher "serve.restored" v)
              (num_field d "restored"));
        Option.bind (Json.member "durability" j) (fun d ->
            Option.map
              (fun b ->
                m ~unit_:"bool" ~dir:Record.Higher ~gate:true ~floor:0.
                  ~tolerance:0. "serve.restore_exact"
                  (if b then 1. else 0.))
              (Option.bind (Json.member "restore_exact" d) Json.bool));
      ]
  in
  (* A chaos run deliberately injects stalls, crashes, and artifact damage,
     so its latency/throughput numbers are not comparable with a clean serve
     baseline.  Give it a separate gate context: the correctness gates
     (escapes, mismatches, restore_exact) still bind, and perf baselines
     accrue chaos-vs-chaos. *)
  let context =
    if Json.member "chaos" j <> None then "serve-chaos" else "serve"
  in
  if metrics = [] then Error "serve snapshot yielded no metrics"
  else
    Ok
      (Record.make ?commit ~source ~runs:1 ~seq
         ~label:(Option.value ~default:(Printf.sprintf "PR%d" seq) label)
         ~context metrics)

(* ------------------------------------------------------------------ *)
(* Fuzz shape: PR 3                                                     *)
(* ------------------------------------------------------------------ *)

let import_fuzz ?seq ?label ?commit ~source j =
  let* pr =
    match (seq, num_field j "pr") with
    | Some s, _ -> Ok s
    | None, Some v -> Ok (int_of_float v)
    | None, None -> Error "no sequence number: payload has no \"pr\" field"
  in
  let m = Record.metric in
  let* cases = require j "cases" in
  let* injected = require j "injected" in
  let* caught = require j "caught" in
  let failures = Option.value ~default:0. (num_field j "failures") in
  let metrics =
    [
      m "fuzz.cases" cases;
      m ~dir:Record.Lower ~gate:true ~floor:0. ~tolerance:0. "fuzz.failures"
        failures;
      m ~unit_:"pct" ~dir:Record.Higher ~gate:true ~floor:0. ~tolerance:0.
        "fuzz.injected_caught_pct"
        (if injected = 0. then 100. else 100. *. caught /. injected);
    ]
    @ List.filter_map
        (fun (key, name) ->
          Option.map (fun v -> m name v) (num_field j key))
        [
          ("reordered", "fuzz.sequences_reordered");
          ("pieces_certified", "fuzz.pieces_certified");
          ("lint_verdicts", "fuzz.lint_verdicts");
        ]
  in
  Ok
    (Record.make ?commit ~source ~runs:1 ~seq:pr
       ~label:(Option.value ~default:(Printf.sprintf "PR%d" pr) label)
       ~context:"fuzz" metrics)

(* ------------------------------------------------------------------ *)
(* Static-profile shape: PR 9                                           *)
(* ------------------------------------------------------------------ *)

let import_static ?seq ?label ?commit ~source j =
  let* pr =
    match (seq, num_field j "pr") with
    | Some s, _ -> Ok s
    | None, Some v -> Ok (int_of_float v)
    | None, None -> Error "no sequence number: payload has no \"pr\" field"
  in
  let m = Record.metric in
  let red name reord =
    Option.map
      (fun v ->
        m ~unit_:"pct" ~dir:Record.Lower ~gate:true ~floor:0.2
          ~tolerance:tol_reduction name v)
      (aggregate_reduction j ~orig:"orig_branches" ~reord)
  in
  (* the headline claim: on how many workloads does the profile-free
     prediction buy at least half of what training buys?  One workload
     of slack (~10% of the 17) keeps harmless reshuffles from tripping
     the gate while still catching a real prediction regression. *)
  let at_half =
    Option.map
      (fun v ->
        m ~unit_:"count" ~dir:Record.Higher ~gate:true ~floor:0. ~tolerance:10.
          "static.workloads_at_half_trained" v)
      (num_field j "workloads_at_half_trained")
  in
  let metrics =
    List.filter_map Fun.id
      [
        red "static.branch_reduction_pct" "static_branches";
        red "static.trained_branch_reduction_pct" "trained_branches";
        red "static.both_branch_reduction_pct" "both_branches";
        at_half;
        Option.map (fun v -> m "static.workloads_compared" v)
          (num_field j "workloads_compared");
      ]
  in
  if metrics = [] then Error "static-profile snapshot yielded no metrics"
  else
    Ok
      (Record.make ?commit ~source ~runs:1 ~seq:pr
         ~label:(Option.value ~default:(Printf.sprintf "PR%d" pr) label)
         ~context:"static-profile" metrics)

(* ------------------------------------------------------------------ *)
(* Shape dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let of_json ?seq ?label ?commit ?(gate_wall = false) ~source j =
  match Option.bind (Json.member "bench" j) Json.str with
  | Some "serve_replay" -> import_serve ?seq ?label ?commit ~gate_wall ~source j
  | Some "fuzz" -> import_fuzz ?seq ?label ?commit ~source j
  | Some "static_profile" -> import_static ?seq ?label ?commit ~source j
  | Some other -> Error (Printf.sprintf "unknown bench shape %S" other)
  | None ->
    if Json.member "pr" j <> None || Json.member "workloads" j <> None then
      import_suite ?seq ?label ?commit ~gate_wall ~source j
    else Error "unrecognized snapshot shape (no \"bench\" or \"pr\" field)"

let of_file ?seq ?label ?commit ?gate_wall path =
  match Json.parse_file path with
  | exception Json.Parse_error m -> Error (path ^ ": " ^ m)
  | exception Sys_error m -> Error m
  | j ->
    let seq = match seq with Some s -> Some s | None -> seq_of_filename path in
    of_json ?seq ?label ?commit ?gate_wall ~source:(Filename.basename path) j
