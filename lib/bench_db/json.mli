(** A dependency-free JSON value type, parser and printer.

    The repo's machine-readable artifacts — the historical [BENCH_PR*.json]
    snapshots, the bench history time series, failure manifests — are all
    JSON, and the toolchain deliberately carries no third-party JSON
    dependency.  {!Driver.Manifest} reads exactly one flat-object shape;
    this module is the general reader the importers need: full recursive
    values, arrays, nested objects, escapes, and a printer whose output
    round-trips ({!parse} of {!to_string} is {!equal}).

    Numbers are kept as [float] with a flag recording whether the source
    lexeme was integral, so [{"n": 34}] prints back as [34], not [34.]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Position-annotated message. *)

val parse : string -> t
(** @raise Parse_error on malformed input (trailing garbage included). *)

val parse_file : string -> t
(** {!parse} on a whole file's contents. *)

val to_string : ?compact:bool -> t -> string
(** [compact] (default [true]) prints with no whitespace — one line, the
    shape history files store per record.  With [compact:false], objects
    and arrays break across indented lines. *)

val equal : t -> t -> bool
(** Structural, with [Int n] equal to [Float f] when [f = float n]. *)

(** {2 Accessors} — total, returning [None] on shape mismatch. *)

val member : string -> t -> t option
val str : t -> string option
val num : t -> float option
val int : t -> int option
val bool : t -> bool option
val arr : t -> t list option
val obj : t -> (string * t) list option

val escape_string : string -> string
(** The quoted, escaped JSON literal for a string (used for embedding
    strings in line-oriented headers outside full JSON documents). *)

val unescape_string : string -> string option
(** Inverse of {!escape_string}; [None] if not a valid quoted literal. *)
