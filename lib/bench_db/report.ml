let bars = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83"; "\xe2\x96\x84";
              "\xe2\x96\x85"; "\xe2\x96\x86"; "\xe2\x96\x87"; "\xe2\x96\x88" |]

(* up to three decimals, trailing zeros trimmed: 832.37, 1.104, 5, -46.419 *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.3f" v in
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = '0' do decr n done;
    if !n > 0 && s.[!n - 1] = '.' then decr n;
    String.sub s 0 !n
  end

let sparkline values =
  let present = List.filter_map Fun.id values in
  let lo = List.fold_left min infinity present in
  let hi = List.fold_left max neg_infinity present in
  let cell = function
    | None -> "\xc2\xb7" (* · *)
    | Some v ->
      if hi -. lo < 1e-12 then bars.(3)
      else
        let idx =
          int_of_float (Float.round ((v -. lo) /. (hi -. lo) *. 7.))
        in
        bars.(max 0 (min 7 idx))
  in
  String.concat "" (List.map cell values)

(* signed pct between the last observation and the previous one *)
let last_delta values =
  match List.rev (List.filter_map Fun.id values) with
  | last :: prev :: _ when Float.abs prev > 1e-12 ->
    Some (100. *. (last -. prev) /. Float.abs prev)
  | _ -> None

(* insertion-ordered dedup *)
let uniq xs =
  List.fold_left (fun acc x -> if List.mem x acc then acc else x :: acc) [] xs
  |> List.rev

let contexts records =
  uniq (List.map (fun (r : Record.t) -> r.Record.r_context) records)

let metric_names records =
  uniq
    (List.concat_map
       (fun (r : Record.t) ->
         List.map (fun m -> m.Record.m_name) r.Record.r_metrics)
       records)

let dir_arrow = function
  | Record.Higher -> "\xe2\x86\x91" (* ↑ *)
  | Record.Lower -> "\xe2\x86\x93" (* ↓ *)

type row = {
  row_name : string;
  row_unit : string;
  row_dir : Record.dir;
  row_gated : bool;
  row_values : float option list;  (* one slot per record column *)
}

let rows_of_context records =
  List.filter_map
    (fun name ->
      let cells =
        List.map (fun r -> Option.map (fun m -> m.Record.m_value)
                     (Record.find r name)) records
      in
      match
        List.find_map (fun r -> Record.find r name) records
      with
      | None -> None
      | Some m ->
        Some
          {
            row_name = name;
            row_unit = m.Record.m_unit;
            row_dir = m.Record.m_dir;
            row_gated = m.Record.m_gate;
            row_values = cells;
          })
    (metric_names records)

(* ------------------------------------------------------------------ *)
(* Markdown                                                            *)
(* ------------------------------------------------------------------ *)

let md_context buf records context =
  let records =
    List.filter (fun (r : Record.t) -> r.Record.r_context = context) records
  in
  Buffer.add_string buf (Printf.sprintf "## Context `%s`\n\n" context);
  let labels = List.map (fun (r : Record.t) -> r.Record.r_label) records in
  Buffer.add_string buf
    ("| metric | unit | better | gate | trend | "
    ^ String.concat " | " labels
    ^ " | \xce\x94 last |\n");
  Buffer.add_string buf
    ("|---|---|---|---|---|"
    ^ String.concat "" (List.map (fun _ -> "---|") labels)
    ^ "---|\n");
  List.iter
    (fun row ->
      let cells =
        List.map
          (function None -> "\xc2\xb7" | Some v -> fmt_value v)
          row.row_values
      in
      Buffer.add_string buf
        (Printf.sprintf "| %s | %s | %s | %s | %s | %s | %s |\n" row.row_name
           row.row_unit (dir_arrow row.row_dir)
           (if row.row_gated then "\xe2\x9c\x93" else "")
           (sparkline row.row_values)
           (String.concat " | " cells)
           (match last_delta row.row_values with
           | None -> "\xc2\xb7"
           | Some d -> Printf.sprintf "%+.1f%%" d)))
    (rows_of_context records);
  Buffer.add_char buf '\n'

let to_markdown records =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "# Benchmark trend report\n\n";
  Buffer.add_string buf
    (Printf.sprintf
       "%d records, schema version %d. Metrics marked \xe2\x9c\x93 are \
        regression-gated; \xe2\x86\x91 means higher is better. Values are \
        best-of-N where the record says so; \xc2\xb7 marks snapshots that \
        did not carry the metric.\n\n"
       (List.length records) Record.schema_version);
  List.iter (md_context buf records) (contexts records);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* HTML                                                                *)
(* ------------------------------------------------------------------ *)

let html_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let html_context buf records context =
  let records =
    List.filter (fun (r : Record.t) -> r.Record.r_context = context) records
  in
  Buffer.add_string buf
    (Printf.sprintf "<h2>Context <code>%s</code></h2>\n<table>\n<tr>"
       (html_escape context));
  Buffer.add_string buf
    "<th>metric</th><th>unit</th><th>better</th><th>gate</th><th>trend</th>";
  List.iter
    (fun (r : Record.t) ->
      Buffer.add_string buf
        (Printf.sprintf "<th>%s</th>" (html_escape r.Record.r_label)))
    records;
  Buffer.add_string buf "<th>\xce\x94 last</th></tr>\n";
  List.iter
    (fun row ->
      Buffer.add_string buf
        (Printf.sprintf
           "<tr><td class=\"m\">%s</td><td>%s</td><td>%s</td><td>%s</td><td \
            class=\"spark\">%s</td>"
           (html_escape row.row_name) (html_escape row.row_unit)
           (dir_arrow row.row_dir)
           (if row.row_gated then "\xe2\x9c\x93" else "")
           (sparkline row.row_values));
      List.iter
        (fun v ->
          Buffer.add_string buf
            (Printf.sprintf "<td class=\"v\">%s</td>"
               (match v with None -> "\xc2\xb7" | Some v -> fmt_value v)))
        row.row_values;
      Buffer.add_string buf
        (Printf.sprintf "<td class=\"v\">%s</td></tr>\n"
           (match last_delta row.row_values with
           | None -> "\xc2\xb7"
           | Some d -> Printf.sprintf "%+.1f%%" d)))
    (rows_of_context records);
  Buffer.add_string buf "</table>\n"

let to_html records =
  let buf = Buffer.create 8192 in
  Buffer.add_string buf
    "<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n\
     <title>Benchmark trend report</title>\n<style>\n\
     body { font: 14px/1.5 system-ui, sans-serif; margin: 2rem; }\n\
     table { border-collapse: collapse; margin-bottom: 2rem; }\n\
     th, td { border: 1px solid #ccc; padding: 0.25rem 0.6rem; }\n\
     th { background: #f2f2f2; text-align: left; }\n\
     td.v { text-align: right; font-variant-numeric: tabular-nums; }\n\
     td.m { font-family: monospace; }\n\
     td.spark { font-family: monospace; letter-spacing: 0.05em; }\n\
     </style>\n</head>\n<body>\n<h1>Benchmark trend report</h1>\n";
  Buffer.add_string buf
    (Printf.sprintf
       "<p>%d records, schema version %d. Metrics marked \xe2\x9c\x93 are \
        regression-gated; \xe2\x86\x91 means higher is better.</p>\n"
       (List.length records) Record.schema_version);
  List.iter (html_context buf records) (contexts records);
  Buffer.add_string buf "</body>\n</html>\n";
  Buffer.contents buf
