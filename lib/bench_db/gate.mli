(** The regression gate: direction-aware comparison of a head record's
    gated metrics against the history, built for CI exit codes.

    For every gated metric of the head record the gate finds a baseline
    — the latest earlier record in the {e same context} that carries the
    metric (or a specific record when [against] names one) — and
    computes the relative worsening in the metric's bad direction.
    Three dampers keep the gate from flapping:

    - the {b noise floor}: an absolute delta no larger than the metric's
      [m_floor] never fails, whatever percentage it is of a near-zero
      baseline;
    - the {b per-metric tolerance}: a metric whose [m_tolerance] is set
      fails only beyond it (wall-derived speedups tolerate 15%,
      deterministic count reductions 2.5%, correctness tallies 0%);
      metrics without one use the command-line default;
    - {b best-of-N} is already inside the record ([r_runs]): timing
      metrics are minima of repeated cycles, so single-run spikes never
      reach the gate. *)

type status =
  | Pass         (** worsened within tolerance *)
  | Improved
  | Fail         (** worsened beyond tolerance and above the floor *)
  | Below_floor  (** delta within the absolute noise floor *)
  | No_baseline  (** first observation in this context *)

type verdict = {
  v_metric : string;
  v_unit : string;
  v_dir : Record.dir;
  v_head : float;
  v_base : float option;
  v_base_label : string option;
  v_regress_pct : float;  (** positive = worsening; [0.] without baseline *)
  v_threshold : float;
  v_floor : float;
  v_status : status;
}

val check :
  ?max_regress:float ->
  ?against:string ->
  head:Record.t ->
  history:Record.t list ->
  unit ->
  verdict list
(** [max_regress] (default [10.]) is the tolerance for metrics that
    carry none of their own.  [against] restricts the baseline to one
    label.  Records whose [(seq, label)] equals the head's are never
    their own baseline, so the head may be a member of [history]. *)

val failures : verdict list -> verdict list

val pp_verdict : Format.formatter -> verdict -> unit
val pp : Format.formatter -> verdict list -> unit
(** The whole table, failures last (they are what the eye must hit). *)
