(** The static trend report: the whole history rendered as per-context
    sparktables, one row per metric, one column per record.

    Both renderers are deterministic functions of the record list — no
    timestamps, no environment — so a fixed history fixture produces
    byte-stable output suitable for golden tests and for committing as a
    CI artifact. *)

val to_markdown : Record.t list -> string
(** GitHub-flavored markdown: a heading per context, a table with a
    unicode sparkline per metric and a signed delta between the last two
    observations. *)

val to_html : Record.t list -> string
(** The same tables as a self-contained static HTML page (inline CSS,
    no scripts, no external fetches). *)
