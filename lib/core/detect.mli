(** Detection of reorderable sequences of range conditions
    (paper Section 3, Figure 4).

    A sequence is a path of blocks, each testing the same register against
    constants, linked by "continue" edges; every tested range exits to a
    target outside the path.  Detection understands:

    - single-branch conditions ([==], [!=], [<], [<=], [>], [>=]), with
      both interpretations of a relational branch (the taken-side range
      [R] and the fall-through-side range [I] of Figure 4);
    - Form 4 bounded ranges spanning two compare/branch blocks with a
      common "out" successor;
    - branches that reuse the condition codes of the preceding compare
      (the shape the binary-search switch translation and the Figure 9
      redundant-comparison elimination produce); their constant is
      inherited along the path;
    - intervening side effects: instructions preceding a condition's
      compare are recorded on the item and later duplicated onto exit
      edges (Theorem 2).  An instruction that redefines the branch
      variable ends the sequence, as do calls (a callee could read or
      write any global the targets use only through memory, which is
      safe, but we follow the paper and treat only register effects as
      transparent; calls are kept as ordinary side effects).

    Blocks join at most one sequence (marking, as in Figure 4); detection
    is deterministic in layout order. *)

type item = {
  range : Range.t;
  target : string;      (** label control exits to when the range matches *)
  orig_pos : int;       (** 1-based position in the original sequence *)
  item_blocks : string list;
      (** blocks implementing the condition (two for Form 4) *)
  sides : Mir.Insn.t list;
      (** side effects executed immediately before this condition
          (leading instructions of its first block; empty for the head) *)
  exit_cc_const : int;
      (** constant of the last compare executed on the original exit edge
          (needed when the target consumes the condition codes) *)
  exit_cc_swapped : bool;
      (** the exit compare was [cmp #c, var]: the cc pair it leaves is
          [(const, var)], so reestablishment must keep that operand
          order *)
  had_own_cmp : bool;
      (** false when the condition reused the preceding compare *)
}

type t = {
  seq_id : int;
  func_name : string;
  var : Mir.Reg.t;
  head : string;                 (** label of the first condition's block *)
  items : item list;             (** original order *)
  default_target : string;       (** continue label after the last condition *)
  default_cc_const : int option; (** condition codes on the default edge *)
}

val items_count : t -> int
val branches : t -> int
(** Conditional branches the original sequence contains. *)

val explicit_ranges : t -> Range.t list
val default_ranges : t -> Range.t list
(** Minimal cover of the values no explicit range tests (Section 5). *)

val pp : Format.formatter -> t -> unit

val find_func :
  ?min_len:int ->
  ?facts:Analysis.Intervals.t ->
  next_id:int ref ->
  Mir.Func.t ->
  t list
(** Sequences in layout order; [min_len] (default 2) is the minimum item
    count.  [next_id] supplies and advances sequence ids.

    With [facts] (interval analysis of the same function) detection
    admits sequences the syntactic walk rejects: blocks whose compare is
    followed by further (cc-preserving, variable-preserving)
    instructions; register compares whose other operand the facts pin to
    a constant; and overlapping candidate ranges narrowed to the values
    the facts prove can actually reach the test. *)

val find_program : ?min_len:int -> ?facts:bool -> Mir.Program.t -> t list
(** [facts] (default [false]) runs {!Analysis.Intervals.analyze} on each
    function and hands the result to {!find_func}. *)
