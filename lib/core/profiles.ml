type counts_view = {
  item_counts : int array;
  default_counts : (Range.t * int) list;
  total : int;
}

(* the profile table's rows: every range of the sequence sorted by lo,
   remembering where each came from *)
type row = {
  row_range : Range.t;
  row_origin : [ `Item of int | `Default of int ];
}

let rows (seq : Detect.t) =
  let explicit =
    List.mapi
      (fun i (it : Detect.item) -> { row_range = it.Detect.range; row_origin = `Item i })
      seq.Detect.items
  in
  let defaults =
    List.mapi
      (fun j r -> { row_range = r; row_origin = `Default j })
      (Detect.default_ranges seq)
  in
  List.sort
    (fun a b -> Range.compare a.row_range b.row_range)
    (explicit @ defaults)

let insert_profile_insn fn (seq : Detect.t) =
  let head = Mir.Func.find_block fn seq.Detect.head in
  (* splice the probe immediately before the head's last compare — the
     one the sequence branches on — which facts-admitted heads may
     follow with further (compare-free) instructions *)
  let rec splice = function
    | (Mir.Insn.Cmp _ as cmp) :: rev_pre ->
      List.rev_append rev_pre
        [ Mir.Insn.Profile_range (seq.Detect.seq_id, seq.Detect.var); cmp ]
    | i :: rest -> (splice rest) @ [ i ]
    | [] ->
      invalid_arg
        (Printf.sprintf "Profiles.instrument: head %s has no compare"
           seq.Detect.head)
  in
  head.Mir.Block.insns <- splice (List.rev head.Mir.Block.insns)

let instrument (p : Mir.Program.t) (seqs : Detect.t list) =
  let table = Sim.Profile.make () in
  List.iter
    (fun (seq : Detect.t) ->
      let rs = rows seq in
      let bounds =
        Array.of_list
          (List.map (fun r -> (Range.lo r.row_range, Range.hi r.row_range)) rs)
      in
      ignore (Sim.Profile.register_range_seq table seq.Detect.seq_id bounds);
      let fn = Mir.Program.find_func p seq.Detect.func_name in
      insert_profile_insn fn seq)
    seqs;
  table

let counts table (seq : Detect.t) =
  match Sim.Profile.find_range_seq table seq.Detect.seq_id with
  | None ->
    invalid_arg
      (Printf.sprintf "Profiles.counts: sequence %d not registered"
         seq.Detect.seq_id)
  | Some prof ->
    let rs = rows seq in
    let item_counts = Array.make (List.length seq.Detect.items) 0 in
    let defaults = ref [] in
    List.iteri
      (fun idx row ->
        let count = prof.Sim.Profile.counts.(idx) in
        match row.row_origin with
        | `Item i -> item_counts.(i) <- count
        | `Default _ -> defaults := (row.row_range, count) :: !defaults)
      rs;
    {
      item_counts;
      default_counts = List.rev !defaults;
      total = prof.Sim.Profile.executions;
    }

let strip (p : Mir.Program.t) =
  List.iter
    (fun (fn : Mir.Func.t) ->
      List.iter
        (fun (b : Mir.Block.t) ->
          b.Mir.Block.insns <-
            List.filter (fun i -> not (Mir.Insn.is_profile i)) b.Mir.Block.insns)
        fn.Mir.Func.blocks)
    p.Mir.Program.funcs

let select_input (seq : Detect.t) view =
  let n = List.length seq.Detect.items in
  let explicit =
    List.mapi
      (fun i (it : Detect.item) ->
        {
          Select.in_range = it.Detect.range;
          in_target = it.Detect.target;
          in_cost = Range_cond.cost it.Detect.range;
          in_count = view.item_counts.(i);
          in_payload = i;
        })
      seq.Detect.items
  in
  let defaults =
    List.mapi
      (fun j (r, count) ->
        {
          Select.in_range = r;
          in_target = seq.Detect.default_target;
          in_cost = Range_cond.cost r;
          in_count = count;
          in_payload = n + j;
        })
      view.default_counts
  in
  explicit @ defaults
