type counts_view = {
  item_counts : int array;
  default_counts : (Range.t * int) list;
  total : int;
}

(* the profile table's rows: every range of the sequence sorted by lo,
   remembering where each came from *)
type row = {
  row_range : Range.t;
  row_origin : [ `Item of int | `Default of int ];
}

let rows (seq : Detect.t) =
  let explicit =
    List.mapi
      (fun i (it : Detect.item) -> { row_range = it.Detect.range; row_origin = `Item i })
      seq.Detect.items
  in
  let defaults =
    List.mapi
      (fun j r -> { row_range = r; row_origin = `Default j })
      (Detect.default_ranges seq)
  in
  List.sort
    (fun a b -> Range.compare a.row_range b.row_range)
    (explicit @ defaults)

let insert_profile_insn fn (seq : Detect.t) =
  let head = Mir.Func.find_block fn seq.Detect.head in
  (* splice the probe immediately before the head's last compare — the
     one the sequence branches on — which facts-admitted heads may
     follow with further (compare-free) instructions *)
  let rec splice = function
    | (Mir.Insn.Cmp _ as cmp) :: rev_pre ->
      List.rev_append rev_pre
        [ Mir.Insn.Profile_range (seq.Detect.seq_id, seq.Detect.var); cmp ]
    | i :: rest -> (splice rest) @ [ i ]
    | [] ->
      invalid_arg
        (Printf.sprintf "Profiles.instrument: head %s has no compare"
           seq.Detect.head)
  in
  head.Mir.Block.insns <- splice (List.rev head.Mir.Block.insns)

let instrument (p : Mir.Program.t) (seqs : Detect.t list) =
  let table = Sim.Profile.make () in
  List.iter
    (fun (seq : Detect.t) ->
      let rs = rows seq in
      let bounds =
        Array.of_list
          (List.map (fun r -> (Range.lo r.row_range, Range.hi r.row_range)) rs)
      in
      ignore (Sim.Profile.register_range_seq table seq.Detect.seq_id bounds);
      let fn = Mir.Program.find_func p seq.Detect.func_name in
      insert_profile_insn fn seq)
    seqs;
  table

let counts table (seq : Detect.t) =
  match Sim.Profile.find_range_seq table seq.Detect.seq_id with
  | None ->
    invalid_arg
      (Printf.sprintf "Profiles.counts: sequence %d not registered"
         seq.Detect.seq_id)
  | Some prof ->
    let rs = rows seq in
    let item_counts = Array.make (List.length seq.Detect.items) 0 in
    let defaults = ref [] in
    List.iteri
      (fun idx row ->
        let count = prof.Sim.Profile.counts.(idx) in
        match row.row_origin with
        | `Item i -> item_counts.(i) <- count
        | `Default _ -> defaults := (row.row_range, count) :: !defaults)
      rs;
    {
      item_counts;
      default_counts = List.rev !defaults;
      total = prof.Sim.Profile.executions;
    }

(* --- static profile synthesis ------------------------------------------ *)

(* counts per unit of predicted head frequency; three decimal digits of
   probability resolution is plenty for ranking orderings, and keeps
   counts comfortably inside the int range even under deep loop nests *)
let static_scale = 1000

(* clamp predicted block frequencies before scaling into counts *)
let max_static_freq = 1e6

(* the branch variable's assumed domain when splitting mass over a
   sequence's ranges: bytes plus EOF.  Range tests overwhelmingly come
   from character and small-token dispatch, and a uniform prior over
   this window is the switch-arm analogue of Wu–Larus's uniform
   successor split — rows entirely outside it (the unbounded default
   tails) keep a sliver so no registered range is predicted dead. *)
let domain_lo = -1
let domain_hi = 255
let outside_weight = 0.125

let row_weight r =
  let lo = max (Range.lo r) domain_lo and hi = min (Range.hi r) domain_hi in
  if hi < lo then outside_weight else float_of_int (hi - lo + 1)

(* probability that one range condition exits to its own target, given
   control entered its first block: a probability-mass walk over the
   item's blocks (two for Form 4) under the predicted successor
   distributions.  Mass on edges to the item's target accumulates as
   exit mass; mass into the item's other block carries on; everything
   else continues past the condition. *)
let item_exit_prob freq (it : Detect.item) =
  match it.Detect.item_blocks with
  | [] -> 0.
  | first :: _ ->
    let mass = Hashtbl.create 4 in
    Hashtbl.replace mass first 1.;
    let exit = ref 0. in
    List.iter
      (fun label ->
        let m = Option.value ~default:0. (Hashtbl.find_opt mass label) in
        if m > 0. then
          List.iter
            (fun (s, p) ->
              if String.equal s it.Detect.target then exit := !exit +. (m *. p)
              else if
                List.exists (String.equal s) it.Detect.item_blocks
                && not (String.equal s label)
              then
                Hashtbl.replace mass s
                  ((m *. p) +. Option.value ~default:0. (Hashtbl.find_opt mass s)))
            (Analysis.Freq.succ_probs freq label))
      it.Detect.item_blocks;
    Float.min 1. !exit

(* chained walk distribution: every explicit item's exit probability
   under the {!Analysis.Heur} branch probabilities, residual mass split
   evenly over the default rows *)
let walk_probs freq (seq : Detect.t) rs =
  let items = Array.of_list seq.Detect.items in
  let item_prob = Array.make (Array.length items) 0. in
  let reach = ref 1. in
  Array.iteri
    (fun i it ->
      let pe = item_exit_prob freq it in
      item_prob.(i) <- !reach *. pe;
      reach := !reach *. (1. -. pe))
    items;
  let n_defaults =
    List.length
      (List.filter
         (fun r -> match r.row_origin with `Default _ -> true | _ -> false)
         rs)
  in
  let default_share =
    if n_defaults = 0 then 0. else !reach /. float_of_int n_defaults
  in
  List.map
    (fun row ->
      match row.row_origin with
      | `Item i -> item_prob.(i)
      | `Default _ -> default_share)
    rs

(* width-prior distribution: each row in proportion to how much of the
   assumed variable domain it covers *)
let width_probs rs =
  let weights = List.map (fun row -> row_weight row.row_range) rs in
  let wsum = List.fold_left ( +. ) 0. weights in
  List.map (fun w -> if wsum > 0. then w /. wsum else 0.) weights

let fill_static ~scale freq (seq : Detect.t) (prof : Sim.Profile.range_seq) =
  let head_freq =
    Float.min max_static_freq (Analysis.Freq.block_freq freq seq.Detect.head)
  in
  let rs = rows seq in
  (* two independent static signals, combined by normalized geometric
     mean: the heuristic walk knows about surrounding control flow
     (loop exits, guards), the width prior knows that a test covering
     most of the domain fires more often than a single-value test;
     the geometric mean keeps a row hot only when neither signal calls
     it cold *)
  let raw =
    List.map2
      (fun pw pv -> sqrt (pw *. pv))
      (walk_probs freq seq rs) (width_probs rs)
  in
  let rsum = List.fold_left ( +. ) 0. raw in
  let probs = List.map (fun p -> if rsum > 0. then p /. rsum else 0.) raw in
  let budget = float_of_int scale *. head_freq in
  let total = ref 0 in
  List.iteri
    (fun idx p ->
      let c = max 0 (int_of_float (Float.round (budget *. p))) in
      prof.Sim.Profile.counts.(idx) <- c;
      total := !total + c)
    probs;
  prof.Sim.Profile.executions <- !total

let add_static ?(scale = static_scale) (p : Mir.Program.t) (seqs : Detect.t list)
    table =
  let by_func = Hashtbl.create 8 in
  List.iter
    (fun (seq : Detect.t) ->
      Hashtbl.replace by_func seq.Detect.func_name
        (Option.value ~default:[] (Hashtbl.find_opt by_func seq.Detect.func_name)
        @ [ seq ]))
    seqs;
  List.iter
    (fun (fn : Mir.Func.t) ->
      match Hashtbl.find_opt by_func fn.Mir.Func.name with
      | None | Some [] -> ()
      | Some fn_seqs ->
        (* one analysis pass serves every sequence of the function *)
        let loops = Analysis.Loops.analyze fn in
        let heur = Analysis.Heur.analyze ~loops fn in
        let freq = Analysis.Freq.analyze ~heur ~loops fn in
        List.iter
          (fun (seq : Detect.t) ->
            match Sim.Profile.find_range_seq table seq.Detect.seq_id with
            | None -> ()
            | Some prof ->
              (* measured counts always win: only sequences training
                 never exercised are filled from the prediction *)
              if prof.Sim.Profile.executions = 0 then
                fill_static ~scale freq seq prof)
          fn_seqs)
    p.Mir.Program.funcs

let register (table : Sim.Profile.t) (seq : Detect.t) =
  let rs = rows seq in
  let bounds =
    Array.of_list
      (List.map (fun r -> (Range.lo r.row_range, Range.hi r.row_range)) rs)
  in
  ignore (Sim.Profile.register_range_seq table seq.Detect.seq_id bounds)

let of_static ?scale (p : Mir.Program.t) (seqs : Detect.t list) =
  let table = Sim.Profile.make () in
  List.iter (register table) seqs;
  add_static ?scale p seqs table;
  table

let strip (p : Mir.Program.t) =
  List.iter
    (fun (fn : Mir.Func.t) ->
      List.iter
        (fun (b : Mir.Block.t) ->
          b.Mir.Block.insns <-
            List.filter (fun i -> not (Mir.Insn.is_profile i)) b.Mir.Block.insns)
        fn.Mir.Func.blocks)
    p.Mir.Program.funcs

let select_input (seq : Detect.t) view =
  let n = List.length seq.Detect.items in
  let explicit =
    List.mapi
      (fun i (it : Detect.item) ->
        {
          Select.in_range = it.Detect.range;
          in_target = it.Detect.target;
          in_cost = Range_cond.cost it.Detect.range;
          in_count = view.item_counts.(i);
          in_payload = i;
        })
      seq.Detect.items
  in
  let defaults =
    List.mapi
      (fun j (r, count) ->
        {
          Select.in_range = r;
          in_target = seq.Detect.default_target;
          in_cost = Range_cond.cost r;
          in_count = count;
          in_payload = n + j;
        })
      view.default_counts
  in
  explicit @ defaults
