(** Profiling support for reorderable sequences (Section 5).

    All instrumentation for a sequence lives at its head: one
    {!Mir.Insn.Profile_range} pseudo instruction placed just before the
    head's compare records which range — explicit or default — the branch
    variable falls in each time the sequence is entered from the top.
    The pseudo instruction is free in the simulator and removed by
    {!strip} before any measurement run. *)

type counts_view = {
  item_counts : int array;          (** per explicit item, original order *)
  default_counts : (Range.t * int) list;  (** per default range, by lo *)
  total : int;                      (** executions of the sequence head *)
}

val instrument : Mir.Program.t -> Detect.t list -> Sim.Profile.t
(** Registers every sequence's range table and inserts the profiling
    pseudo instruction at each head.  The program is modified in place. *)

val counts : Sim.Profile.t -> Detect.t -> counts_view
(** Read back training counts after a profiling run. *)

val of_static : ?scale:int -> Mir.Program.t -> Detect.t list -> Sim.Profile.t
(** A profile table synthesized from the CFG alone: every sequence's
    range table is registered (no probes are inserted — there is no
    training run to feed them) and filled with predicted counts from
    {!Analysis.Freq} block frequencies and {!Analysis.Heur} branch
    probabilities.  Each head's predicted frequency (clamped) times
    [scale] (default 1000) becomes the sequence's execution budget,
    split over the rows by the normalized geometric mean of two
    independent static signals: a probability-mass walk of the range
    conditions under the heuristic branch probabilities, and a uniform
    prior over the byte-plus-EOF variable domain weighting each row by
    how much of that domain it covers.  The counts are exactly what
    {!counts} / {!select_input} expect, so nothing downstream of
    training changes. *)

val add_static : ?scale:int -> Mir.Program.t -> Detect.t list -> Sim.Profile.t -> unit
(** Fill predicted counts into every {e registered but unexercised}
    sequence of an existing table (one whose [executions] is 0) —
    measured counts always win.  This is the [--profile=both] and
    serve-cold-start path: train where data exists, predict where it
    does not. *)

val strip : Mir.Program.t -> unit
(** Remove all profiling pseudo instructions. *)

val select_input : Detect.t -> counts_view -> Select.input_item list
(** Assemble the selection problem: explicit items carry payloads
    [0 .. n-1] (their original 0-based position); default ranges carry
    payloads [n, n+1, ...] and target the sequence's default label.
    Costs come from {!Range_cond.cost}. *)
