(** Profile-drift detection for a long-running service.

    A serving daemon keeps the profile counters of each cached program
    alive across requests.  As traffic shifts, the accumulated counts
    can come to justify a {e different} Eq. 1–4 ordering than the one
    the served artifact was optimized with.  This module answers the
    question "would the selector choose differently under today's
    counts?" without touching any program: it reruns the paper's
    selection (the same cost model and cc-compatibility filter as
    {!Pass.run}) against a profile table and renders the outcome as a
    stable string {e signature}.

    The daemon computes the signature when it (re-)optimizes a program
    and again after merging fresh profile shards; a changed signature
    means the cost ordering of at least one sequence has flipped, and
    the artifact should be rebuilt. *)

val signature :
  ?selector:[ `Greedy | `Exhaustive ] ->
  ?keep_original_default:bool ->
  Mir.Program.t ->
  Detect.t list ->
  Sim.Profile.t ->
  string
(** [signature base seqs table] renders, per sequence: the payload
    order the selector picks under [table]'s counts, the eliminated
    payloads, and the chosen default target — or ["?"] for a sequence
    with no executions (or no compatible ordering) yet.  Deterministic
    in the counts; equal counts give equal signatures.  [base] must be
    the (untransformed) program the sequences were detected on. *)

val drifted : served:string -> current:string -> bool
(** [drifted ~served ~current] — has the selection moved away from the
    signature the served artifact was built with?  A sequence that
    merely {e gains} its first samples (served ["?"]) also counts as
    drift: the service now has a profile where it had none. *)

(** {2 Durable drift state}

    What a crash-safe daemon persists per program: the generation its
    served artifact is at, the profile executions when it was last
    (re-)optimized, and the signature it was built with.  Versioned: a
    blob written by an older signature-rendering scheme deserializes to
    [None], forcing the restored daemon to recompute rather than compare
    incomparable signatures. *)

val state_version : int

val state_to_string : generation:int -> executions:int -> string -> string
(** Render [(generation, executions, signature)] as one line (the
    signature may contain any characters except newline). *)

val state_of_string : string -> (int * int * string) option
(** Inverse of {!state_to_string}; [None] on malformed input or a
    version mismatch. *)
