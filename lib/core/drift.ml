(* re-run the paper's selection (same compatibility filter and cost
   model as Pass.run) against a profile table, without applying
   anything, and render the outcome as a comparable string *)

let seq_signature ?(selector = `Greedy) ?(keep_original_default = false)
    (p : Mir.Program.t) (seq : Detect.t) table =
  let view = Profiles.counts table seq in
  if view.Profiles.total = 0 then "?"
  else begin
    let fn = Mir.Program.find_func p seq.Detect.func_name in
    let ccl = Analysis.Cc_live.analyze fn in
    let input = Profiles.select_input seq view in
    let compatible eliminated =
      Apply.compatible_for ~cc:ccl fn seq eliminated
      && ((not keep_original_default)
         || List.for_all
              (fun (it : Select.input_item) ->
                String.equal it.Select.in_target seq.Detect.default_target)
              eliminated)
    in
    let choice =
      match selector with
      | `Greedy -> Select.greedy ~compatible ~total:view.Profiles.total input
      | `Exhaustive ->
        if List.length input > 14 then
          Select.greedy ~compatible ~total:view.Profiles.total input
        else
          Select.exhaustive ~compatible ~max_items:14
            ~total:view.Profiles.total input
    in
    match choice with
    | None -> "?"
    | Some c ->
      let payloads items =
        String.concat ","
          (List.map
             (fun (it : Select.input_item) -> string_of_int it.Select.in_payload)
             items)
      in
      Printf.sprintf "%s|%s>%s"
        (payloads c.Select.ordered)
        (payloads
           (List.sort
              (fun (a : Select.input_item) (b : Select.input_item) ->
                Int.compare a.Select.in_payload b.Select.in_payload)
              c.Select.eliminated))
        c.Select.default_target
  end

let signature ?selector ?keep_original_default (p : Mir.Program.t) seqs table =
  String.concat ";"
    (List.map
       (fun (seq : Detect.t) ->
         Printf.sprintf "%d:%s" seq.Detect.seq_id
           (seq_signature ?selector ?keep_original_default p seq table))
       seqs)

let drifted ~served ~current = not (String.equal served current)
