(* re-run the paper's selection (same compatibility filter and cost
   model as Pass.run) against a profile table, without applying
   anything, and render the outcome as a comparable string *)

let seq_signature ?(selector = `Greedy) ?(keep_original_default = false)
    (p : Mir.Program.t) (seq : Detect.t) table =
  let view = Profiles.counts table seq in
  if view.Profiles.total = 0 then "?"
  else begin
    let fn = Mir.Program.find_func p seq.Detect.func_name in
    let ccl = Analysis.Cc_live.analyze fn in
    let input = Profiles.select_input seq view in
    let compatible eliminated =
      Apply.compatible_for ~cc:ccl fn seq eliminated
      && ((not keep_original_default)
         || List.for_all
              (fun (it : Select.input_item) ->
                String.equal it.Select.in_target seq.Detect.default_target)
              eliminated)
    in
    let choice =
      match selector with
      | `Greedy -> Select.greedy ~compatible ~total:view.Profiles.total input
      | `Exhaustive ->
        if List.length input > 14 then
          Select.greedy ~compatible ~total:view.Profiles.total input
        else
          Select.exhaustive ~compatible ~max_items:14
            ~total:view.Profiles.total input
    in
    match choice with
    | None -> "?"
    | Some c ->
      let payloads items =
        String.concat ","
          (List.map
             (fun (it : Select.input_item) -> string_of_int it.Select.in_payload)
             items)
      in
      Printf.sprintf "%s|%s>%s"
        (payloads c.Select.ordered)
        (payloads
           (List.sort
              (fun (a : Select.input_item) (b : Select.input_item) ->
                Int.compare a.Select.in_payload b.Select.in_payload)
              c.Select.eliminated))
        c.Select.default_target
  end

let signature ?selector ?keep_original_default (p : Mir.Program.t) seqs table =
  String.concat ";"
    (List.map
       (fun (seq : Detect.t) ->
         Printf.sprintf "%d:%s" seq.Detect.seq_id
           (seq_signature ?selector ?keep_original_default p seq table))
       seqs)

let drifted ~served ~current = not (String.equal served current)

(* ------------------------------------------------------------------ *)
(* Durable drift state                                                  *)
(* ------------------------------------------------------------------ *)

(* bumped whenever the signature rendering above changes shape: a
   persisted state from an older scheme must read back as None so the
   daemon recomputes instead of comparing apples to oranges *)
let state_version = 1

let state_to_string ~generation ~executions signature =
  if generation < 0 || executions < 0 then
    invalid_arg "Drift.state_to_string: negative field";
  Printf.sprintf "v%d g%d e%d %s" state_version generation executions signature

let state_of_string s =
  match String.index_opt s ' ' with
  | None -> None
  | Some sp1 -> (
    match String.index_from_opt s (sp1 + 1) ' ' with
    | None -> None
    | Some sp2 -> (
      match String.index_from_opt s (sp2 + 1) ' ' with
      | None -> None
      | Some sp3 ->
        let field lo hi tag =
          let w = String.sub s lo (hi - lo) in
          if String.length w < 2 || w.[0] <> tag then None
          else int_of_string_opt (String.sub w 1 (String.length w - 1))
        in
        let signature = String.sub s (sp3 + 1) (String.length s - sp3 - 1) in
        (match (field 0 sp1 'v', field (sp1 + 1) sp2 'g', field (sp2 + 1) sp3 'e')
         with
        | Some v, Some g, Some e when v = state_version && g >= 0 && e >= 0 ->
          Some (g, e, signature)
        | _ -> None)))
