(** Why a range test did not grow into a reorderable sequence.

    Detection ({!Detect}) silently skips chains shorter than two range
    tests.  This module re-runs the walk with the length floor lowered
    to one and, for every lone test, classifies what stopped the chain
    at its continuation block — a different variable, a call clobbering
    the condition codes, a compare that is not the block's last
    instruction (admissible only under interval-facts detection),
    overlapping ranges the facts cannot disentangle, and so on.

    The result reuses {!Analysis.Lint.diag} with the [Not_reorderable]
    kind so [bromc lint] can present one merged report. *)

val explain_func :
  ?facts:Analysis.Intervals.t -> Mir.Func.t -> Analysis.Lint.diag list
(** Diagnostics anchored at the head block of each lone range test, in
    layout order.  With [facts] the walk runs in facts mode, so the
    reasons reflect what even the strengthened detection cannot admit. *)

val explain_program : ?facts:bool -> Mir.Program.t -> Analysis.Lint.diag list
(** [facts] (default [true]) analyzes each function with
    {!Analysis.Intervals} first, as [Detect.find_program ~facts:true]
    would. *)
