type plan = {
  table_lo : int;
  table_hi : int;
  targets : string array;
}

let has_cmp (b : Mir.Block.t) =
  List.exists (function Mir.Insn.Cmp _ -> true | _ -> false) b.Mir.Block.insns

let cc_needing fn label =
  match Mir.Func.find_block_opt fn label with
  | Some b -> (
    match b.Mir.Block.term.Mir.Block.kind with
    | Mir.Block.Br _ -> not (has_cmp b)
    | _ -> false)
  | None -> false

let coalescible fn (seq : Detect.t) ~max_span =
  let items = seq.Detect.items in
  let pure = List.for_all (fun (it : Detect.item) -> it.Detect.sides = []) items in
  let bounded =
    List.for_all
      (fun (it : Detect.item) ->
        Range.lo it.Detect.range > Range.min_value
        && Range.hi it.Detect.range < Range.max_value)
      items
  in
  let targets_ok =
    List.for_all
      (fun (it : Detect.item) -> not (cc_needing fn it.Detect.target))
      items
    && not (cc_needing fn seq.Detect.default_target)
  in
  if not (pure && bounded && targets_ok && items <> []) then None
  else begin
    let lo =
      List.fold_left
        (fun acc (it : Detect.item) -> min acc (Range.lo it.Detect.range))
        max_int items
    in
    let hi =
      List.fold_left
        (fun acc (it : Detect.item) -> max acc (Range.hi it.Detect.range))
        min_int items
    in
    let span = hi - lo + 1 in
    if span > max_span then None
    else begin
      let targets =
        Array.init span (fun i ->
            let v = lo + i in
            match
              List.find_opt
                (fun (it : Detect.item) -> Range.mem v it.Detect.range)
                items
            with
            | Some it -> it.Detect.target
            | None -> seq.Detect.default_target)
      in
      Some { table_lo = lo; table_hi = hi; targets }
    end
  end

let indirect_cost_per_execution (m : Sim.Cycle_model.params) =
  6 + m.Sim.Cycle_model.indirect_penalty

let decide ~machine ~total ~reorder_cost plan =
  ignore plan;
  total * indirect_cost_per_execution machine < reorder_cost

(* the sequence compare a facts-admitted head branches on may be
   followed by further instructions: remove the last compare wherever it
   sits (detection guarantees nothing after it redefines the variable,
   so appending the table-bounds compare at the end stays correct) *)
let strip_last_cmp (b : Mir.Block.t) =
  let rec go post = function
    | Mir.Insn.Cmp _ :: rev_pre ->
      b.Mir.Block.insns <- List.rev_append rev_pre post
    | i :: rest -> go (i :: post) rest
    | [] -> ()
  in
  go [] (List.rev b.Mir.Block.insns)

let apply fn (seq : Detect.t) plan =
  let head = Mir.Func.find_block fn seq.Detect.head in
  strip_last_cmp head;
  let var = Mir.Operand.Reg seq.Detect.var in
  let tid = Mir.Func.add_jtable fn plan.targets in
  let idx = Mir.Func.fresh_reg fn in
  let hi_label = Mir.Func.fresh_label fn in
  let jump_label = Mir.Func.fresh_label fn in
  head.Mir.Block.insns <-
    head.Mir.Block.insns @ [ Mir.Insn.Cmp (var, Mir.Operand.Imm plan.table_lo) ];
  head.Mir.Block.term <-
    Mir.Block.term (Mir.Block.Br (Mir.Cond.Lt, seq.Detect.default_target, hi_label));
  Mir.Func.insert_blocks_after fn seq.Detect.head
    [
      Mir.Block.make ~label:hi_label
        [ Mir.Insn.Cmp (var, Mir.Operand.Imm plan.table_hi) ]
        (Mir.Block.Br (Mir.Cond.Gt, seq.Detect.default_target, jump_label));
      Mir.Block.make ~label:jump_label
        [ Mir.Insn.Binop (Mir.Insn.Sub, idx, var, Mir.Operand.Imm plan.table_lo) ]
        (Mir.Block.Jtab (idx, tid));
    ]
