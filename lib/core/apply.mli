(** Applying the reordering transformation (Section 8, Figure 10).

    A replicated sequence of range conditions in the selected order is
    spliced in after the head: the head block keeps its leading
    instructions and jumps to the replica; intervening side effects are
    duplicated onto the exit edges that would have executed them in the
    original order (Theorem 2); the original condition blocks survive
    only where they remain reachable from other entries (dead-code
    elimination removes the rest, as in Figure 10(e)).

    Post-selection improvements (Section 7):
    - within a Form 4 condition the bound more likely to disprove the
      range is tested first, judged from the remaining ranges' counts;
    - redundant comparisons between adjacent conditions are eliminated,
      including the Figure 9 constant renormalisation ([cmp v,c+1; bge]
      becoming [cmp v,c; bg] so a following [cmp v,c] can be dropped).

    Exit edges whose target consumes the condition codes (a compare-less
    branch block, as the binary-search lowering produces) receive an
    explicit compare reestablishing the codes the original path
    guaranteed.

    The default target's code can be duplicated into the fall-through
    position (up to [tail_dup_limit] instructions, terminator [Jmp] or
    [Ret] only) to avoid the extra unconditional jump, as the paper does
    for targets with a fall-through predecessor. *)

type options = {
  tail_dup_limit : int;  (** 0 disables tail duplication *)
  improve_cmp : bool;    (** Figure 9 redundant comparison elimination *)
  improve_form4 : bool;  (** Section 7 bound-order improvement *)
}

val default_options : options

type applied = {
  replica_entry : string;
  new_block_count : int;
  final_branches : int;   (** branches in the replicated sequence *)
  final_items : int;      (** explicitly tested ranges *)
  cmps_eliminated : int;
}

type outcome =
  | Applied of applied
  | Skipped of string  (** reason; the function is left unchanged *)

val compatible_for :
  ?cc:Analysis.Cc_live.t ->
  Mir.Func.t ->
  Detect.t ->
  Select.input_item list ->
  bool
(** The elimination-set compatibility predicate to pass to selection:
    all eliminated ranges must agree on the side effects and condition
    codes their shared default edge must provide.  [cc] memoises the
    condition-code liveness analysis of the function (selection calls
    this predicate many times per sequence); it is computed on the fly
    when absent. *)

val apply_seq :
  Mir.Func.t -> Detect.t -> Select.choice -> options -> outcome
