type outcome =
  | Reordered of Apply.applied
  | Coalesced of Coalesce.plan
  | Unchanged of string

type seq_report = {
  sr_seq : Detect.t;
  sr_total : int;
  sr_choice : Select.choice option;
  sr_outcome : outcome;
  sr_orig_branches : int;
  sr_final_branches : int;
}

type report = { seq_reports : seq_report list }

let reordered_count r =
  List.length
    (List.filter
       (fun sr ->
         match sr.sr_outcome with
         | Reordered _ -> true
         | Coalesced _ | Unchanged _ -> false)
       r.seq_reports)

let coalesced_count r =
  List.length
    (List.filter
       (fun sr ->
         match sr.sr_outcome with
         | Coalesced _ -> true
         | Reordered _ | Unchanged _ -> false)
       r.seq_reports)

let detected_count r = List.length r.seq_reports

(* is the chosen configuration just the original sequence again? *)
let is_identity (seq : Detect.t) (choice : Select.choice) =
  let n = List.length seq.Detect.items in
  let ordered_payloads =
    List.map (fun it -> it.Select.in_payload) choice.Select.ordered
  in
  let eliminated_payloads =
    List.sort Int.compare
      (List.map (fun it -> it.Select.in_payload) choice.Select.eliminated)
  in
  let defaults = Detect.default_ranges seq in
  ordered_payloads = List.init n (fun i -> i)
  && eliminated_payloads = List.init (List.length defaults) (fun j -> n + j)
  && String.equal choice.Select.default_target seq.Detect.default_target

let run ?(options = Apply.default_options) ?(selector = `Greedy)
    ?(keep_original_default = false) ?coalesce_machine
    ?(coalesce_max_span = 512) (p : Mir.Program.t) (seqs : Detect.t list)
    profile_table =
  let reports =
    List.map
      (fun (seq : Detect.t) ->
        let view = Profiles.counts profile_table seq in
        let orig_branches = Detect.branches seq in
        let base sr_outcome sr_choice sr_final =
          {
            sr_seq = seq;
            sr_total = view.Profiles.total;
            sr_choice;
            sr_outcome;
            sr_orig_branches = orig_branches;
            sr_final_branches = sr_final;
          }
        in
        if view.Profiles.total = 0 then
          base (Unchanged "never executed in training") None orig_branches
        else begin
          let fn = Mir.Program.find_func p seq.Detect.func_name in
          let ccl = Analysis.Cc_live.analyze fn in
          let input = Profiles.select_input seq view in
          let compatible eliminated =
            Apply.compatible_for ~cc:ccl fn seq eliminated
            && ((not keep_original_default)
               || List.for_all
                    (fun (it : Select.input_item) ->
                      String.equal it.Select.in_target seq.Detect.default_target)
                    eliminated)
          in
          let choice =
            match selector with
            | `Greedy -> Select.greedy ~compatible ~total:view.Profiles.total input
            | `Exhaustive ->
              (* 2^m subsets per target: fall back to Figure 8 on the rare
                 very long sequences *)
              if List.length input > 14 then
                Select.greedy ~compatible ~total:view.Profiles.total input
              else
                Select.exhaustive ~compatible ~max_items:14
                  ~total:view.Profiles.total input
          in
          match choice with
          | None -> base (Unchanged "no compatible ordering") None orig_branches
          | Some choice ->
            (* the paper's concluding suggestion: use the profile to pick
               between reordering and an indirect jump, per machine *)
            let coalesce_plan =
              match coalesce_machine with
              | None -> None
              | Some machine -> (
                match
                  Coalesce.coalescible fn seq ~max_span:coalesce_max_span
                with
                | Some plan
                  when Coalesce.decide ~machine ~total:view.Profiles.total
                         ~reorder_cost:choice.Select.est_cost plan ->
                  Some plan
                | Some _ | None -> None)
            in
            match coalesce_plan with
            | Some plan ->
              Coalesce.apply fn seq plan;
              base (Coalesced plan) (Some choice) orig_branches
            | None ->
            if is_identity seq choice then
              base
                (Unchanged "original ordering already selected")
                (Some choice) orig_branches
            else (
              match Apply.apply_seq fn seq choice options with
              | Apply.Applied info ->
                base (Reordered info) (Some choice) info.Apply.final_branches
              | Apply.Skipped reason ->
                base (Unchanged reason) (Some choice) orig_branches)
        end)
      seqs
  in
  { seq_reports = reports }

let pp_report ppf r =
  List.iter
    (fun sr ->
      let status =
        match sr.sr_outcome with
        | Reordered info ->
          Printf.sprintf "reordered (%d items, %d branches, %d cmps merged)"
            info.Apply.final_items info.Apply.final_branches
            info.Apply.cmps_eliminated
        | Coalesced plan ->
          Printf.sprintf "coalesced into an indirect jump ([%d..%d], %d entries)"
            plan.Coalesce.table_lo plan.Coalesce.table_hi
            (Array.length plan.Coalesce.targets)
        | Unchanged reason -> "unchanged: " ^ reason
      in
      Format.fprintf ppf "seq #%d %s/%s (%d execs): %s@\n" sr.sr_seq.Detect.seq_id
        sr.sr_seq.Detect.func_name sr.sr_seq.Detect.head sr.sr_total status)
    r.seq_reports
