module Iv = Analysis.Iv
module Lint = Analysis.Lint

let in_bounds c = c > Range.min_value && c < Range.max_value
let defines_var var insn = List.exists (Mir.Reg.equal var) (Mir.Insn.defs insn)

let has_call (b : Mir.Block.t) =
  List.exists (function Mir.Insn.Call _ -> true | _ -> false) b.Mir.Block.insns

(* same split as Detect: the last compare whose codes reach the
   terminator, [None] when a call clobbers them first *)
let split_last_cmp insns =
  let rec go post = function
    | Mir.Insn.Cmp (a, b) :: rev_pre -> Some (List.rev rev_pre, a, b, post)
    | Mir.Insn.Call _ :: _ -> None
    | i :: rest -> go (i :: post) rest
    | [] -> None
  in
  go [] (List.rev insns)

let block_effects ?intervals b =
  match Analysis.Purity.effects ?intervals b with
  | [] -> ""
  | effs -> Printf.sprintf " (block effects: %s)" (Analysis.Purity.describe effs)

(* why the walk could not continue from [seq]'s last test into its
   default target *)
let stop_reason fn fx (seq : Detect.t) ~member =
  let var = seq.Detect.var in
  let stop = seq.Detect.default_target in
  match Mir.Func.find_block_opt fn stop with
  | None -> Format.asprintf "its continuation %s leaves the function" stop
  | Some sb when Hashtbl.mem member stop ->
    Format.asprintf
      "its continuation %s already belongs to another detected sequence"
      sb.Mir.Block.label
  | Some sb -> (
    match sb.Mir.Block.term.Mir.Block.kind with
    | Mir.Block.Jmp l ->
      Format.asprintf
        "its continuation %s is an unconditional jump to %s (detection does \
         not follow forwarders)"
        stop l
    | Mir.Block.Switch _ | Mir.Block.Jtab _ ->
      Format.asprintf "its continuation %s is an indirect multiway jump" stop
    | Mir.Block.Ret _ ->
      Format.asprintf "its continuation %s returns" stop
    | Mir.Block.Br _ -> (
      match split_last_cmp sb.Mir.Block.insns with
      | None ->
        if has_call sb then
          Format.asprintf
            "a call in %s clobbers the condition codes before its branch%s"
            stop
            (block_effects ?intervals:fx sb)
        else
          Format.asprintf
            "the branch in %s consumes condition codes inherited across the \
             sequence edge, which the preceding test does not leave in a \
             usable form"
            stop
      | Some (pre, a, cb, post) -> (
        let sides_bad insns =
          List.exists
            (fun i -> defines_var var i || Mir.Insn.is_profile i)
            insns
        in
        match (a, cb) with
        | Mir.Operand.Reg r, Mir.Operand.Imm c
        | Mir.Operand.Imm c, Mir.Operand.Reg r ->
          if not (Mir.Reg.equal r var) then
            Format.asprintf
              "its continuation %s tests %a, not the sequence variable %a"
              stop Mir.Reg.pp r Mir.Reg.pp var
          else if not (in_bounds c) then
            Format.asprintf
              "the compare constant %d in %s is at the edge of the \
               representable range"
              c stop
          else if post <> [] && fx = None then
            Format.asprintf
              "instructions follow the compare in %s; interval-facts \
               detection would consider it"
              stop
          else if List.exists (defines_var var) post then
            Format.asprintf
              "instructions between the compare and the branch in %s \
               redefine %a"
              stop Mir.Reg.pp var
          else if sides_bad (pre @ post) then
            Format.asprintf
              "instructions around the compare in %s redefine %a or are \
               profiling probes, so they cannot be duplicated onto exit \
               edges"
              stop Mir.Reg.pp var
          else
            let avail =
              match fx with
              | None -> ""
              | Some fx ->
                Format.asprintf " (values reaching the test: %a)" Iv.pp
                  (Analysis.Intervals.reg_before fx sb (List.length pre) var)
            in
            Format.asprintf
              "the range tested in %s overlaps values already claimed by \
               the sequence%s"
              stop avail
        | Mir.Operand.Reg _, Mir.Operand.Reg _ ->
          if fx = None then
            Format.asprintf
              "the compare in %s is between two registers; interval-facts \
               detection may pin one operand to a constant"
              stop
          else
            Format.asprintf
              "the compare in %s is between two registers and the interval \
               facts pin neither operand to a constant"
              stop
        | Mir.Operand.Imm _, Mir.Operand.Imm _ ->
          Format.asprintf "the compare in %s is between two constants" stop)))

let explain_func ?facts fn =
  let next_id = ref 0 in
  let probes = Detect.find_func ?facts ~min_len:1 ~next_id fn in
  (* blocks owned by real (>= 2 test) sequences, so a lone test stopping
     at one is explained as such *)
  let member = Hashtbl.create 16 in
  List.iter
    (fun (seq : Detect.t) ->
      if Detect.items_count seq >= 2 then begin
        Hashtbl.replace member seq.Detect.head ();
        List.iter
          (fun (it : Detect.item) ->
            List.iter
              (fun l -> Hashtbl.replace member l ())
              it.Detect.item_blocks)
          seq.Detect.items
      end)
    probes;
  List.filter_map
    (fun (seq : Detect.t) ->
      if Detect.items_count seq >= 2 then None
      else
        Some
          {
            Lint.func = fn.Mir.Func.name;
            label = seq.Detect.head;
            kind = Lint.Not_reorderable;
            message =
              Format.asprintf "lone range test on %a: %s" Mir.Reg.pp
                seq.Detect.var
                (stop_reason fn facts seq ~member);
          })
    probes

let explain_program ?(facts = true) (p : Mir.Program.t) =
  List.concat_map
    (fun fn ->
      let facts =
        if facts then Some (Analysis.Intervals.analyze fn) else None
      in
      explain_func ?facts fn)
    p.Mir.Program.funcs
