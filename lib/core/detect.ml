module Iv = Analysis.Iv

type item = {
  range : Range.t;
  target : string;
  orig_pos : int;
  item_blocks : string list;
  sides : Mir.Insn.t list;
  exit_cc_const : int;
  exit_cc_swapped : bool;
  had_own_cmp : bool;
}

type t = {
  seq_id : int;
  func_name : string;
  var : Mir.Reg.t;
  head : string;
  items : item list;
  default_target : string;
  default_cc_const : int option;
}

let items_count seq = List.length seq.items

let branches seq =
  List.fold_left (fun acc it -> acc + List.length it.item_blocks) 0 seq.items

let explicit_ranges seq = List.map (fun it -> it.range) seq.items
let default_ranges seq = Range.complement_cover (explicit_ranges seq)

let pp ppf seq =
  Format.fprintf ppf "seq #%d in %s on %a, head %s:@\n" seq.seq_id
    seq.func_name Mir.Reg.pp seq.var seq.head;
  List.iter
    (fun it ->
      Format.fprintf ppf "  %d: %a -> %s%s@\n" it.orig_pos Range.pp it.range
        it.target
        (if it.sides = [] then ""
         else Printf.sprintf " (%d side-effect insns)" (List.length it.sides)))
    seq.items;
  Format.fprintf ppf "  default -> %s@\n" seq.default_target

(* ------------------------------------------------------------------ *)
(* Parsing one block as a range condition                              *)
(* ------------------------------------------------------------------ *)

(* a candidate interpretation of the condition starting at some block *)
type cand = {
  c_range : Range.t;
  c_exit : string;        (* target when the value is in the range *)
  c_next : string;        (* where the sequence continues *)
  c_exit_cc : int;        (* cmp constant live on the exit edge *)
  c_exit_swapped : bool;  (* the exit cc pair is (const, var), not (var, const) *)
  c_next_cc : int option; (* cmp constant live on the continue edge *)
  c_blocks : string list;
  c_sides : Mir.Insn.t list;
  c_avail : Iv.t;         (* interval facts for the variable at the test *)
  c_own_cmp : bool;
}

let in_bounds c = c > Range.min_value && c < Range.max_value

(* the block's test: variable, constant, side effects (instructions around
   the compare, in order), whether the compare is the block's own *)
type test = {
  t_var : Mir.Reg.t;
  t_const : int;
  t_sides : Mir.Insn.t list;
  t_avail : Iv.t;
  t_own : bool;
}

let defines_var var insn = List.exists (Mir.Reg.equal var) (Mir.Insn.defs insn)

(* Split at the last compare whose condition codes actually reach the
   terminator: [Some (pre, a, b, post)] with nothing cc-writing in
   [post].  A call after the last compare clobbers the shared cc
   register, so the branch does not read this compare at all. *)
let split_last_cmp insns =
  let rec go post = function
    | Mir.Insn.Cmp (a, b) :: rev_pre -> Some (List.rev rev_pre, a, b, post)
    | Mir.Insn.Call _ :: _ -> None
    | i :: rest -> go (i :: post) rest
    | [] -> None
  in
  go [] (List.rev insns)

let has_cmp (b : Mir.Block.t) =
  List.exists (function Mir.Insn.Cmp _ -> true | _ -> false) b.Mir.Block.insns

let has_call (b : Mir.Block.t) =
  List.exists (function Mir.Insn.Call _ -> true | _ -> false) b.Mir.Block.insns

let block_test ?facts ~var ~cc (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br _ -> (
    match split_last_cmp b.Mir.Block.insns with
    | Some (pre, a, cb, post) when post = [] || facts <> None -> (
      let cmp_idx = List.length pre in
      let iv_at_cmp r =
        match facts with
        | None -> Iv.top
        | Some fx -> Analysis.Intervals.reg_before fx b cmp_idx r
      in
      let var_ok r =
        match var with None -> true | Some v -> Mir.Reg.equal v r
      in
      let normalized =
        match a, cb with
        | Mir.Operand.Reg r, Mir.Operand.Imm c ->
          if var_ok r && in_bounds c then Some (r, c, false) else None
        | Mir.Operand.Imm c, Mir.Operand.Reg r ->
          if var_ok r && in_bounds c then Some (r, c, true) else None
        | Mir.Operand.Reg r, Mir.Operand.Reg s ->
          (* a register compare whose other side the interval facts pin
             to a single value is a range test in disguise *)
          let as_var v other swapped =
            if var_ok v then
              match Iv.is_const (iv_at_cmp other) with
              | Some c when in_bounds c -> Some (v, c, swapped)
              | _ -> None
            else None
          in
          (match as_var r s false with
          | Some _ as res -> res
          | None -> as_var s r true)
        | Mir.Operand.Imm _, Mir.Operand.Imm _ -> None
      in
      match normalized with
      | Some (r, c, swapped) when not (List.exists (defines_var r) post) ->
        (* [post] executes between the compare and the branch on every
           path, so it joins the side effects; redefining the variable
           there would make the recorded test read a stale value *)
        Some
          ( {
              t_var = r;
              t_const = c;
              t_sides = pre @ post;
              t_avail = iv_at_cmp r;
              t_own = true;
            },
            swapped )
      | _ -> None)
    | Some _ -> None
    | None -> (
      (* no compare reaches the terminator: the branch consumes the
         condition codes of the path's previous compare — unless a call
         clobbered them (the cc register is shared with callees) *)
      match var, cc with
      | Some v, Some c when not (has_cmp b || has_call b) ->
        let avail =
          match facts with
          | None -> Iv.top
          | Some fx -> Analysis.Intervals.reg_in fx b.Mir.Block.label v
        in
        Some
          ( {
              t_var = v;
              t_const = c;
              t_sides = b.Mir.Block.insns;
              t_avail = avail;
              t_own = false;
            },
            false )
      | _ -> None))
  | Mir.Block.Jmp _ | Mir.Block.Switch _ | Mir.Block.Jtab _ | Mir.Block.Ret _ ->
    None

let br_edges (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br (cond, taken, fall) -> Some (cond, taken, fall)
  | _ -> None

(* interval of values for which [cond] against [c] holds; None when the
   set is not an interval (Ne) or is empty *)
(* [in_bounds c] holds for every compare constant that reaches here, so
   c-1 / c+1 stay within [min_value, max_value] *)
let cond_interval cond c =
  match cond with
  | Mir.Cond.Eq -> Some (c, c)
  | Mir.Cond.Ne -> None
  | Mir.Cond.Lt -> Some (Range.min_value, c - 1)
  | Mir.Cond.Le -> Some (Range.min_value, c)
  | Mir.Cond.Gt -> Some (c + 1, Range.max_value)
  | Mir.Cond.Ge -> Some (c, Range.max_value)

let intersect (a_lo, a_hi) (b_lo, b_hi) =
  let lo = max a_lo b_lo and hi = min a_hi b_hi in
  if lo <= hi then Some (lo, hi) else None

(* Form 4: this block's relational branch combined with a successor block
   holding the matching opposite bound, sharing a common "out" successor
   (Figure 4's bounded-range case). *)
let pair_cands fn ~marked (b : Mir.Block.t) (test : test) cond taken fall =
  if not test.t_own then []
  else
    let try_edge my_cond my_target other_target =
      match cond_interval my_cond test.t_const with
      | None -> []
      | Some my_iv -> (
        match Mir.Func.find_block_opt fn my_target with
        | None -> []
        | Some s ->
          if
            Hashtbl.mem marked s.Mir.Block.label
            || String.equal s.Mir.Block.label b.Mir.Block.label
          then []
          else
            (* s must be exactly one compare of the same variable *)
            (match s.Mir.Block.insns, br_edges s with
            | [ Mir.Insn.Cmp (Mir.Operand.Reg r2, Mir.Operand.Imm c2) ],
              Some (cond2, taken2, fall2)
              when Mir.Reg.equal r2 test.t_var && in_bounds c2 ->
              let consider s_cond s_exit s_out =
                if not (String.equal s_out other_target) then []
                else
                  match cond_interval s_cond c2 with
                  | None -> []
                  | Some s_iv -> (
                    match intersect my_iv s_iv with
                    | Some (lo, hi)
                      when lo > Range.min_value && hi < Range.max_value ->
                      [
                        {
                          c_range = Range.make lo hi;
                          c_exit = s_exit;
                          c_next = other_target;
                          c_exit_cc = c2;
                          c_exit_swapped = false;
                          c_next_cc = None;
                          c_blocks = [ b.Mir.Block.label; s.Mir.Block.label ];
                          c_sides = test.t_sides;
                          c_avail = test.t_avail;
                          c_own_cmp = true;
                        };
                      ]
                    | Some _ | None -> [])
              in
              consider cond2 taken2 fall2 @ consider (Mir.Cond.negate cond2) fall2 taken2
            | _ -> []))
    in
    (* my in-range edge can be either the taken or the fall-through edge *)
    try_edge cond taken fall @ try_edge (Mir.Cond.negate cond) fall taken

(* All interpretations of the condition at block [b], in the paper's
   preference order: equality forms, bounded pairs, then the two readings
   of a relational branch. *)
let candidates ?facts fn ~marked ~var ~cc (b : Mir.Block.t) =
  match block_test ?facts ~var ~cc b with
  | None -> []
  | Some (test, swapped) -> (
    match br_edges b with
    | None -> []
    | Some (cond0, taken, fall) ->
      let cond = if swapped then Mir.Cond.swap cond0 else cond0 in
      let c = test.t_const in
      let mk range exit next next_cc =
        {
          c_range = range;
          c_exit = exit;
          c_next = next;
          c_exit_cc = c;
          c_exit_swapped = swapped;
          (* a swapped compare leaves (const, var) in the cc register;
             the continue-edge inheritance only models (var, const) *)
          c_next_cc = (if swapped then None else next_cc);
          c_blocks = [ b.Mir.Block.label ];
          c_sides = test.t_sides;
          c_avail = test.t_avail;
          c_own_cmp = test.t_own;
        }
      in
      let relational lo_r hi_r =
        (* taken-side range R first, fall-side range I second *)
        [ mk lo_r taken fall (Some c); mk hi_r fall taken (Some c) ]
      in
      (match cond with
      | Mir.Cond.Eq -> [ mk (Range.single c) taken fall (Some c) ]
      | Mir.Cond.Ne -> [ mk (Range.single c) fall taken (Some c) ]
      | Mir.Cond.Lt ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.below (c - 1)) (Range.above c)
      | Mir.Cond.Le ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.below c) (Range.above (c + 1))
      | Mir.Cond.Gt ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.above (c + 1)) (Range.below c)
      | Mir.Cond.Ge ->
        pair_cands fn ~marked b test cond taken fall
        @ relational (Range.above c) (Range.below (c - 1))))

(* ------------------------------------------------------------------ *)
(* Walking a path of range conditions                                  *)
(* ------------------------------------------------------------------ *)

(* side effects must be duplicable: they may not redefine the branch
   variable (Theorem 2) and profiling pseudos must not be duplicated *)
let sides_ok var sides =
  List.for_all
    (fun i -> (not (defines_var var i)) && not (Mir.Insn.is_profile i))
    sides

(* A candidate whose nominal range overlaps already-claimed ranges can
   still join the sequence when the interval facts prove the overlap
   never reaches this test: values outside the variable's interval here
   either exited through an earlier range or never enter the sequence at
   all, so narrowing the recorded range to the facts is observationally
   faithful. *)
let narrow_to_facts ranges cand =
  if Range.nonoverlapping cand.c_range ranges then Some cand
  else
    match cand.c_avail with
    | Iv.Iv (lo, hi) ->
      let nlo = max (max lo (Range.lo cand.c_range)) Range.min_value in
      let nhi = min (min hi (Range.hi cand.c_range)) Range.max_value in
      if nlo > nhi then None
      else
        let r = Range.make nlo nhi in
        if Range.nonoverlapping r ranges then Some { cand with c_range = r }
        else None
    | _ -> None

let find_from ?facts fn ~marked ~min_len head =
  let rec walk ~var ~cc ~ranges ~acc ~path block =
    let stop () = (List.rev acc, block.Mir.Block.label, cc) in
    if Hashtbl.mem marked block.Mir.Block.label then stop ()
    else if List.mem block.Mir.Block.label path then stop ()
    else
      let cands = candidates ?facts fn ~marked ~var ~cc block in
      let viable =
        List.find_map
          (fun cand ->
            match narrow_to_facts ranges cand with
            | Some cand
              when acc = [] || sides_ok (Option.get var) cand.c_sides ->
              Some cand
            | _ -> None)
          cands
      in
      match viable with
      | None -> stop ()
      | Some cand ->
        let var_reg =
          match var with
          | Some v -> v
          | None -> (
            (* first condition fixes the variable *)
            match block_test ?facts ~var:None ~cc block with
            | Some (test, _) -> test.t_var
            | None -> assert false)
        in
        let item =
          {
            range = cand.c_range;
            target = cand.c_exit;
            orig_pos = List.length acc + 1;
            item_blocks = cand.c_blocks;
            sides = (if acc = [] then [] else cand.c_sides);
            exit_cc_const = cand.c_exit_cc;
            exit_cc_swapped = cand.c_exit_swapped;
            had_own_cmp = cand.c_own_cmp;
          }
        in
        (* the head's leading instructions stay in place, so they are not
           side effects of the sequence; later blocks' leading
           instructions are recorded on their item *)
        (match Mir.Func.find_block_opt fn cand.c_next with
        | Some next_block ->
          walk ~var:(Some var_reg) ~cc:cand.c_next_cc
            ~ranges:(cand.c_range :: ranges) ~acc:(item :: acc)
            ~path:(block.Mir.Block.label :: path) next_block
        | None -> (List.rev (item :: acc), cand.c_next, cand.c_next_cc))
  in
  let items, default_target, default_cc =
    walk ~var:None ~cc:None ~ranges:[] ~acc:[] ~path:[] head
  in
  if List.length items >= min_len then
    Some (items, default_target, default_cc)
  else None

let find_func ?(min_len = 2) ?facts ~next_id (fn : Mir.Func.t) =
  let marked = Hashtbl.create 64 in
  let reachable = Mir.Func.reachable fn in
  let seqs = ref [] in
  List.iter
    (fun (b : Mir.Block.t) ->
      if
        (not (Hashtbl.mem marked b.Mir.Block.label))
        && Hashtbl.mem reachable b.Mir.Block.label
        (* a head must carry its own compare *)
        && block_test ?facts ~var:None ~cc:None b <> None
      then
        match find_from ?facts fn ~marked ~min_len b with
        | Some (items, default_target, default_cc) ->
          let var =
            match block_test ?facts ~var:None ~cc:None b with
            | Some (test, _) -> test.t_var
            | None -> assert false
          in
          let seq =
            {
              seq_id = !next_id;
              func_name = fn.Mir.Func.name;
              var;
              head = b.Mir.Block.label;
              items;
              default_target;
              default_cc_const = default_cc;
            }
          in
          incr next_id;
          List.iter
            (fun it ->
              List.iter (fun l -> Hashtbl.replace marked l ()) it.item_blocks)
            items;
          seqs := seq :: !seqs
        | None -> ())
    fn.Mir.Func.blocks;
  List.rev !seqs

let find_program ?min_len ?(facts = false) (p : Mir.Program.t) =
  let next_id = ref 0 in
  List.concat_map
    (fun fn ->
      let facts = if facts then Some (Analysis.Intervals.analyze fn) else None in
      find_func ?min_len ?facts ~next_id fn)
    p.Mir.Program.funcs
