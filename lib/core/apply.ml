type options = {
  tail_dup_limit : int;
  improve_cmp : bool;
  improve_form4 : bool;
}

let default_options = { tail_dup_limit = 8; improve_cmp = true; improve_form4 = true }

type applied = {
  replica_entry : string;
  new_block_count : int;
  final_branches : int;
  final_items : int;
  cmps_eliminated : int;
}

type outcome =
  | Applied of applied
  | Skipped of string

(* ------------------------------------------------------------------ *)
(* Edge requirements                                                    *)
(* ------------------------------------------------------------------ *)

(* does the block at [label] consume the condition codes set by its
   predecessor?  Answered by the cc-liveness dataflow analysis, which
   (unlike the old "branch without a compare" syntactic test) follows
   [Jmp]-only forwarders to the consuming branch and knows a [Call]
   clobbers the single global cc register. *)
let cc_needing ccl label = Analysis.Cc_live.live_in ccl label

(* side effects executed on an exit through the item at 0-based original
   position [pos]: the leading instructions of items 1..pos *)
let prefix_insns items_arr pos =
  let out = ref [] in
  for i = 1 to pos do
    out := !out @ items_arr.(i).Detect.sides
  done;
  !out

(* what a selected range's exit edge must provide *)
type edge_req = {
  e_target : string;
  e_pre : Mir.Insn.t list;  (* duplicated side effects *)
  e_cc : (int * bool) option;
      (* compare live on the original edge: the constant, and whether
         the compare was operand-swapped ([cmp #c, var] leaves the cc
         pair (const, var)) so reestablishment preserves operand order *)
}

let edge_req (seq : Detect.t) items_arr n (it : Select.input_item) =
  if it.Select.in_payload < n then begin
    let item = items_arr.(it.Select.in_payload) in
    {
      e_target = item.Detect.target;
      e_pre = prefix_insns items_arr it.Select.in_payload;
      e_cc = Some (item.Detect.exit_cc_const, item.Detect.exit_cc_swapped);
    }
  end
  else
    {
      e_target = seq.Detect.default_target;
      e_pre = prefix_insns items_arr (n - 1);
      e_cc = Option.map (fun c -> (c, false)) seq.Detect.default_cc_const;
    }

let same_insns a b = List.equal Mir.Insn.equal a b

let compatible_for ?cc fn (seq : Detect.t) eliminated =
  let ccl =
    match cc with Some ccl -> ccl | None -> Analysis.Cc_live.analyze fn
  in
  let items_arr = Array.of_list seq.Detect.items in
  let n = Array.length items_arr in
  match List.map (edge_req seq items_arr n) eliminated with
  | [] -> true
  | first :: rest ->
    let pre_ok = List.for_all (fun r -> same_insns r.e_pre first.e_pre) rest in
    let cc_ok =
      (not (cc_needing ccl first.e_target))
      || (first.e_cc <> None
          && List.for_all (fun r -> r.e_cc = first.e_cc) rest)
    in
    pre_ok && cc_ok

(* ------------------------------------------------------------------ *)
(* Building edges                                                       *)
(* ------------------------------------------------------------------ *)

(* duplicate the target block's code into the edge when small and
   terminated by an unconditional transfer (Figure 10's duplication of
   the default target) *)
let tail_dup_of fn target limit =
  if limit <= 0 then None
  else
    match Mir.Func.find_block_opt fn target with
    | Some b when List.length b.Mir.Block.insns <= limit -> (
      match b.Mir.Block.term.kind with
      | (Mir.Block.Jmp _ | Mir.Block.Ret _) as kind
        when b.Mir.Block.term.delay = None
             && not (List.exists Mir.Insn.is_profile b.Mir.Block.insns) ->
        Some (b.Mir.Block.insns, kind)
      | _ -> None)
    | Some _ | None -> None

(* returns the label to branch to, plus any new block *)
let make_edge fn ccl (seq : Detect.t) opts req =
  let needs_cc = cc_needing ccl req.e_target in
  let cc_fix =
    if needs_cc then
      match req.e_cc with
      | Some (c, false) ->
        [ Mir.Insn.Cmp (Mir.Operand.Reg seq.Detect.var, Mir.Operand.Imm c) ]
      | Some (c, true) ->
        [ Mir.Insn.Cmp (Mir.Operand.Imm c, Mir.Operand.Reg seq.Detect.var) ]
      | None -> assert false (* feasibility was checked by the caller *)
    else []
  in
  let dup = if needs_cc then None else tail_dup_of fn req.e_target opts.tail_dup_limit in
  match req.e_pre, cc_fix, dup with
  | [], [], None -> (req.e_target, [])
  | pre, fix, None ->
    let label = Mir.Func.fresh_label fn in
    ( label,
      [ Mir.Block.make ~label (pre @ fix) (Mir.Block.Jmp req.e_target) ] )
  | pre, fix, Some (body, kind) ->
    let label = Mir.Func.fresh_label fn in
    (label, [ Mir.Block.make ~label (pre @ fix @ body) kind ])

(* ------------------------------------------------------------------ *)
(* Form 4 bound ordering (Section 7)                                    *)
(* ------------------------------------------------------------------ *)

(* among the ranges still possible when this condition executes, is the
   mass below the range larger than the mass above it? *)
let lower_first_for opts remaining range =
  if not opts.improve_form4 then true
  else begin
    let c1 = Range.lo range and c2 = Range.hi range in
    let below, above =
      List.fold_left
        (fun (below, above) (it : Select.input_item) ->
          if Range.hi it.Select.in_range < c1 then
            (below + it.Select.in_count, above)
          else if Range.lo it.Select.in_range > c2 then
            (below, above + it.Select.in_count)
          else (below, above))
        (0, 0) remaining
    in
    below >= above
  end

(* ------------------------------------------------------------------ *)
(* Redundant comparison elimination (Figure 9)                          *)
(* ------------------------------------------------------------------ *)

(* a condition against [c_new] whose satisfying value set provably
   equals [cond] against [c_old] — the proof is exact value-set equality
   in {!Analysis.Iset}, which generalises Figure 9's hand-listed c/c±1
   renormalisation pairs to every derivable one *)
let equiv_cond cond c_old c_new =
  let want = Analysis.Iset.of_cond cond c_old in
  List.find_opt
    (fun cond' ->
      Analysis.Iset.equal (Analysis.Iset.of_cond cond' c_new) want)
    [ Mir.Cond.Eq; Mir.Cond.Ne; Mir.Cond.Lt; Mir.Cond.Le; Mir.Cond.Gt;
      Mir.Cond.Ge ]

let block_cmp_const (b : Mir.Block.t) =
  match List.rev b.Mir.Block.insns with
  | Mir.Insn.Cmp (_, Mir.Operand.Imm c) :: _ -> Some c
  | _ -> None

let drop_cmp (b : Mir.Block.t) =
  b.Mir.Block.insns <-
    List.filter (function Mir.Insn.Cmp _ -> false | _ -> true) b.Mir.Block.insns

let set_cmp_const (b : Mir.Block.t) c =
  b.Mir.Block.insns <-
    List.map
      (function
        | Mir.Insn.Cmp (a, Mir.Operand.Imm _) -> Mir.Insn.Cmp (a, Mir.Operand.Imm c)
        | i -> i)
      b.Mir.Block.insns

let set_br_cond (b : Mir.Block.t) cond =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br (_, taken, fall) ->
    b.Mir.Block.term <-
      { b.Mir.Block.term with kind = Mir.Block.Br (cond, taken, fall) }
  | _ -> assert false

let br_cond (b : Mir.Block.t) =
  match b.Mir.Block.term.kind with
  | Mir.Block.Br (cond, _, _) -> Some cond
  | _ -> None

(* Walk the replica chain; each block initially holds exactly one
   compare of the common variable against a constant.  Two sound
   elimination moves, both certified downstream by [Check.Verify]:

   - {e rewrite-current}: re-express this block's branch against the
     holder's constant (covers the same-constant case, where the
     equivalent condition is the branch's own) and drop this block's
     compare — always valid, since the holder is untouched;
   - {e holder-renorm} (Figure 9): rewrite the holder's compare to this
     block's constant and re-express the holder's branch — only valid
     while nothing has consumed the holder's codes yet. *)
let eliminate_redundant_cmps chain =
  let eliminated = ref 0 in
  (* holder: (block, const, consumers since the holder's compare) *)
  let holder = ref None in
  List.iter
    (fun (b : Mir.Block.t) ->
      match block_cmp_const b with
      | None ->
        (* compare-less: relies on (and pins) the holder's codes *)
        (match !holder with
        | Some (hb, hc, consumers) -> holder := Some (hb, hc, consumers + 1)
        | None -> ())
      | Some c -> (
        match !holder with
        | None -> holder := Some (b, c, 0)
        | Some (hb, c', consumers) ->
          let rewrite_current () =
            match br_cond b with
            | None -> false
            | Some cond -> (
              match equiv_cond cond c c' with
              | Some cond' ->
                set_br_cond b cond';
                drop_cmp b;
                incr eliminated;
                holder := Some (hb, c', consumers + 1);
                true
              | None -> false)
          in
          let renorm_holder () =
            consumers = 0
            &&
            match br_cond hb with
            | None -> false
            | Some hcond -> (
              match equiv_cond hcond c' c with
              | Some hcond' ->
                set_cmp_const hb c;
                set_br_cond hb hcond';
                drop_cmp b;
                incr eliminated;
                holder := Some (hb, c, 1);
                true
              | None -> false)
          in
          if not (rewrite_current () || renorm_holder ()) then
            holder := Some (b, c, 0)))
    chain;
  !eliminated

(* ------------------------------------------------------------------ *)
(* The transformation                                                   *)
(* ------------------------------------------------------------------ *)

(* remove the block's last compare wherever it sits; the instructions
   after it (the facts-admitted "post" suffix) stay in place *)
let strip_last_cmp (b : Mir.Block.t) =
  let rec go post = function
    | Mir.Insn.Cmp _ :: rev_pre -> Some (List.rev_append rev_pre post)
    | i :: rest -> go (i :: post) rest
    | [] -> None
  in
  match go [] (List.rev b.Mir.Block.insns) with
  | Some insns ->
    b.Mir.Block.insns <- insns;
    true
  | None -> false

let apply_seq fn (seq : Detect.t) (choice : Select.choice) opts =
  let ccl = Analysis.Cc_live.analyze fn in
  let items_arr = Array.of_list seq.Detect.items in
  let n = Array.length items_arr in
  let reqs_ordered = List.map (edge_req seq items_arr n) choice.Select.ordered in
  (* feasibility: every edge whose target consumes condition codes must
     know which constant to reestablish *)
  let default_req =
    match List.map (edge_req seq items_arr n) choice.Select.eliminated with
    | [] -> None
    | first :: _ -> Some { first with e_target = choice.Select.default_target }
  in
  let infeasible =
    List.exists
      (fun r -> cc_needing ccl r.e_target && r.e_cc = None)
      (reqs_ordered @ Option.to_list default_req)
  in
  if infeasible then Skipped "exit edge needs condition codes of unknown constant"
  else if not (compatible_for ~cc:ccl fn seq choice.Select.eliminated) then
    Skipped "eliminated ranges disagree on side effects or condition codes"
  else if default_req = None then Skipped "empty elimination set"
  else begin
    let default_req = Option.get default_req in
    let new_blocks = ref [] in
    let default_label, default_blocks = make_edge fn ccl seq opts default_req in
    new_blocks := default_blocks;
    (* emit conditions back to front so each falls through to the next *)
    let ordered_arr = Array.of_list choice.Select.ordered in
    let chain = ref [] in
    let fall = ref default_label in
    for i = Array.length ordered_arr - 1 downto 0 do
      let sel = ordered_arr.(i) in
      let req = List.nth reqs_ordered i in
      let exit_label, edge_blocks = make_edge fn ccl seq opts req in
      new_blocks := !new_blocks @ edge_blocks;
      let remaining =
        Array.to_list (Array.sub ordered_arr (i + 1) (Array.length ordered_arr - i - 1))
        @ choice.Select.eliminated
      in
      let emitted =
        Range_cond.emit fn ~var:seq.Detect.var ~range:sel.Select.in_range
          ~exit_to:exit_label ~fall_to:!fall
          ~lower_first:(lower_first_for opts remaining sel.Select.in_range)
      in
      chain := emitted.Range_cond.blocks @ !chain;
      fall := emitted.Range_cond.entry_label
    done;
    let cmps_eliminated =
      if opts.improve_cmp then eliminate_redundant_cmps !chain else 0
    in
    (* head surgery: keep the leading instructions, jump to the replica *)
    let head = Mir.Func.find_block fn seq.Detect.head in
    if not (strip_last_cmp head) then
      Skipped (Printf.sprintf "head %s lost its compare" seq.Detect.head)
    else begin
      let replica_entry = !fall in
      head.Mir.Block.term <- Mir.Block.term (Mir.Block.Jmp replica_entry);
      let blocks = !chain @ !new_blocks in
      Mir.Func.insert_blocks_after fn seq.Detect.head blocks;
      Applied
        {
          replica_entry;
          new_block_count = List.length blocks;
          final_branches =
            List.fold_left
              (fun acc (it : Select.input_item) ->
                acc + Range_cond.branch_count it.Select.in_range)
              0 choice.Select.ordered;
          final_items = List.length choice.Select.ordered;
          cmps_eliminated;
        }
    end
  end
