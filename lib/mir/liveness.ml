type t = Reg.Set.t Dataflow.result

let term_uses (t : Block.term) =
  let kind_uses =
    match t.Block.kind with
    | Block.Br _ | Block.Jmp _ -> []
    | Block.Switch (r, _, _) | Block.Jtab (r, _) -> [ r ]
    | Block.Ret (Some o) -> (
      match Operand.as_reg o with Some r -> [ r ] | None -> [])
    | Block.Ret None -> []
  in
  let delay_uses =
    match t.Block.delay with Some i -> Insn.uses i | None -> []
  in
  kind_uses @ delay_uses

let term_defs (t : Block.term) =
  (* an annulled slot defines its register only on the taken path, so it
     cannot be treated as a kill across both edges *)
  match t.Block.delay with
  | Some i when not t.Block.annul -> Insn.defs i
  | Some _ | None -> []

(* Transfer function for one block: live_in = gen U (live_out \ kill),
   computed by walking instructions backwards.  The terminator's uses are
   consumed first (it executes last). *)
let block_live_in (b : Block.t) out =
  let live = ref out in
  (* delay-slot defs happen after the branch decision but before control
     reaches the successor, so they kill across the edge *)
  List.iter (fun r -> live := Reg.Set.remove r !live) (term_defs b.Block.term);
  List.iter (fun r -> live := Reg.Set.add r !live) (term_uses b.Block.term);
  List.iter
    (fun i ->
      List.iter (fun r -> live := Reg.Set.remove r !live) (Insn.defs i);
      List.iter (fun r -> live := Reg.Set.add r !live) (Insn.uses i))
    (List.rev b.Block.insns);
  !live

(* the bespoke fixpoint loop this module used to carry is gone: liveness
   is now the canonical backward may-problem on the generic engine *)
let problem : Reg.Set.t Dataflow.problem =
  {
    Dataflow.direction = Dataflow.Backward;
    boundary = Reg.Set.empty;
    bottom = Reg.Set.empty;
    join = Reg.Set.union;
    equal = Reg.Set.equal;
    transfer = block_live_in;
    edge = None;
    widen = None;
    widen_after = 0;
  }

let compute (f : Func.t) = Dataflow.solve problem f
let live_in t label = Dataflow.fact_in t label
let live_out t label = Dataflow.fact_out t label
