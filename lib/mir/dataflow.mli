(** Generic worklist dataflow engine over a function's CFG.

    One engine serves every analysis in the tree: {!Liveness} (backward
    may), [Analysis.Intervals] (forward with branch-edge refinement and
    widening), [Analysis.Cc_live], [Analysis.Reaching].  A problem is a
    first-class record — no functor ceremony — parameterized by the
    lattice ([bottom]/[join]/[equal]), the block transfer function, an
    optional per-edge refinement (forward only: the fact flowing from a
    branch can be sharpened differently on the taken and the not-taken
    edge), and an optional widening operator applied once a block has
    been revisited [widen_after] times, which guarantees termination on
    lattices with infinite ascending chains (intervals).

    When widening is used, the solver follows the ascending phase with
    two bounded descending (narrowing) sweeps: the stabilized state is a
    post-fixpoint, so recomputing the equations without widening soundly
    recovers bounds the climb overshot — a loop body refined by its exit
    test keeps the refinement instead of the widened infinity.

    Conventions:
    - facts live on block boundaries; [fact_in] is the fact at block
      {b entry}, [fact_out] at block {b exit}, for both directions;
    - forward: [fact_in b] is the join over predecessors [p] of
      [edge p b (fact_out p)], and [fact_out b = transfer b (fact_in b)];
      the entry block additionally joins [boundary];
    - backward: [fact_out b] is the join over successors [s] of
      [fact_in s], and [fact_in b = transfer b (fact_out b)]; blocks
      without successors additionally join [boundary];
    - blocks never reached by the iteration keep [bottom] (for a forward
      must-analysis this is exactly "unreachable"). *)

type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  boundary : 'fact;  (** fact at the entry (forward) / at every exit (backward) *)
  bottom : 'fact;  (** join identity; initial fact everywhere *)
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : Block.t -> 'fact -> 'fact;
  edge : (Block.t -> string -> 'fact -> 'fact) option;
      (** forward only: [edge src dst_label fact] refines the fact
          flowing along the [src -> dst] edge; ignored when backward *)
  widen : ('fact -> 'fact -> 'fact) option;
      (** [widen old new] replaces [join] at a block input once the
          block has been recomputed [widen_after] times *)
  widen_after : int;  (** visits before widening kicks in (if [widen]) *)
}

type 'fact result

val solve : 'fact problem -> Func.t -> 'fact result

val fact_in : 'fact result -> string -> 'fact
(** Fact at entry of the labelled block; [bottom] for unknown labels. *)

val fact_out : 'fact result -> string -> 'fact
(** Fact at exit of the labelled block; [bottom] for unknown labels. *)

val iterations : 'fact result -> int
(** Blocks recomputed in total — a determinism/termination probe for
    tests (the worklist is seeded and drained in deterministic order). *)
