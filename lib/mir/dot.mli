(** Graphviz rendering of CFGs (for papersmithing and debugging; the CLI
    exposes it as [bromc compile --dot]). *)

val func :
  ?annot:(Block.t -> string option) -> Format.formatter -> Func.t -> unit
(** One [digraph] per function: a record node per block listing its
    instructions, edges labelled T/F for branch arms and with the case
    index for jump tables.  [annot] contributes extra per-block text
    (e.g. dataflow facts, see [bromc dot --facts]) rendered after the
    instructions. *)

val func_to_string : ?annot:(Block.t -> string option) -> Func.t -> string

val program :
  ?annot:(Func.t -> Block.t -> string option) ->
  Format.formatter ->
  Program.t ->
  unit
(** All functions as separate [digraph]s in one stream; [annot] receives
    the enclosing function as well. *)
