let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '<' | '>' | '{' | '}' | '|' ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c
      | '\n' -> Buffer.add_string buf "\\l"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let node_id label = "\"" ^ escape label ^ "\""

let block_text ?annot (b : Block.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf (b.Block.label ^ ":\n");
  List.iter
    (fun i -> Buffer.add_string buf ("  " ^ Insn.show i ^ "\n"))
    b.Block.insns;
  (match b.Block.term.Block.kind with
  | Block.Br (c, _, _) -> Buffer.add_string buf ("  " ^ Cond.mnemonic c ^ " ...\n")
  | Block.Jmp _ -> Buffer.add_string buf "  jmp\n"
  | Block.Switch _ -> Buffer.add_string buf "  switch\n"
  | Block.Jtab _ -> Buffer.add_string buf "  jtab\n"
  | Block.Ret None -> Buffer.add_string buf "  ret\n"
  | Block.Ret (Some o) -> Buffer.add_string buf ("  ret " ^ Operand.show o ^ "\n"));
  (match b.Block.term.Block.delay with
  | Some i -> Buffer.add_string buf ("  [delay] " ^ Insn.show i ^ "\n")
  | None -> ());
  (match annot with
  | Some f -> (
    match f b with
    | Some text -> Buffer.add_string buf ("-- " ^ text ^ "\n")
    | None -> ())
  | None -> ());
  Buffer.contents buf

let func ?annot ppf (f : Func.t) =
  Format.fprintf ppf "digraph \"%s\" {@\n" (escape f.Func.name);
  Format.fprintf ppf "  node [shape=box, fontname=\"monospace\", fontsize=9];@\n";
  List.iter
    (fun (b : Block.t) ->
      Format.fprintf ppf "  %s [label=\"%s\"];@\n" (node_id b.Block.label)
        (escape (block_text ?annot b)))
    f.Func.blocks;
  List.iter
    (fun (b : Block.t) ->
      let src = node_id b.Block.label in
      match b.Block.term.Block.kind with
      | Block.Br (_, taken, fall) ->
        Format.fprintf ppf "  %s -> %s [label=\"T\"];@\n" src (node_id taken);
        Format.fprintf ppf "  %s -> %s [label=\"F\"];@\n" src (node_id fall)
      | Block.Jmp l -> Format.fprintf ppf "  %s -> %s;@\n" src (node_id l)
      | Block.Switch (_, cases, default) ->
        List.iter
          (fun (v, l) ->
            Format.fprintf ppf "  %s -> %s [label=\"%d\"];@\n" src (node_id l) v)
          cases;
        Format.fprintf ppf "  %s -> %s [label=\"default\"];@\n" src
          (node_id default)
      | Block.Jtab (_, id) ->
        let targets = Func.jtab f id in
        let seen = Hashtbl.create 8 in
        Array.iteri
          (fun i l ->
            if not (Hashtbl.mem seen l) then begin
              Hashtbl.replace seen l ();
              Format.fprintf ppf "  %s -> %s [label=\"T%d[%d..]\"];@\n" src
                (node_id l) id i
            end)
          targets
      | Block.Ret _ -> ())
    f.Func.blocks;
  Format.fprintf ppf "}@\n"

let func_to_string ?annot f = Format.asprintf "%a" (func ?annot) f

let program ?annot ppf (p : Program.t) =
  List.iter
    (fun f ->
      let annot = Option.map (fun g -> g f) annot in
      Format.fprintf ppf "%a@\n" (func ?annot) f)
    p.Program.funcs
