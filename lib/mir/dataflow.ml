type direction = Forward | Backward

type 'fact problem = {
  direction : direction;
  boundary : 'fact;
  bottom : 'fact;
  join : 'fact -> 'fact -> 'fact;
  equal : 'fact -> 'fact -> bool;
  transfer : Block.t -> 'fact -> 'fact;
  edge : (Block.t -> string -> 'fact -> 'fact) option;
  widen : ('fact -> 'fact -> 'fact) option;
  widen_after : int;
}

type 'fact result = {
  res_in : (string, 'fact) Hashtbl.t;
  res_out : (string, 'fact) Hashtbl.t;
  res_bottom : 'fact;
  res_iterations : int;
}

let fact_in r label =
  match Hashtbl.find_opt r.res_in label with
  | Some f -> f
  | None -> r.res_bottom

let fact_out r label =
  match Hashtbl.find_opt r.res_out label with
  | Some f -> f
  | None -> r.res_bottom

let iterations r = r.res_iterations

(* a FIFO worklist with membership, so a block queued twice before being
   processed is recomputed once; seeding and requeue order are
   deterministic, making every analysis result reproducible *)
module Worklist = struct
  type t = { q : string Queue.t; mem : (string, unit) Hashtbl.t }

  let create () = { q = Queue.create (); mem = Hashtbl.create 64 }

  let push t label =
    if not (Hashtbl.mem t.mem label) then begin
      Hashtbl.replace t.mem label ();
      Queue.push label t.q
    end

  let pop t =
    match Queue.take_opt t.q with
    | None -> None
    | Some label ->
      Hashtbl.remove t.mem label;
      Some label
end

let solve (p : 'fact problem) (fn : Func.t) : 'fact result =
  let blocks = fn.Func.blocks in
  let by_label = Hashtbl.create 64 in
  List.iter (fun (b : Block.t) -> Hashtbl.replace by_label b.Block.label b) blocks;
  let succs = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace succs b.Block.label (Func.successors fn b))
    blocks;
  let preds = Func.predecessors fn in
  let preds_of label =
    match Hashtbl.find_opt preds label with Some l -> l | None -> []
  in
  let succs_of label =
    match Hashtbl.find_opt succs label with Some l -> l | None -> []
  in
  let res_in = Hashtbl.create 64 in
  let res_out = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      Hashtbl.replace res_in b.Block.label p.bottom;
      Hashtbl.replace res_out b.Block.label p.bottom)
    blocks;
  let visits = Hashtbl.create 64 in
  let iterations = ref 0 in
  let wl = Worklist.create () in
  let entry_label =
    match blocks with [] -> None | b :: _ -> Some b.Block.label
  in
  (* flow-source fact for one block: join over the incoming directions,
     plus the boundary where the block touches the CFG's border *)
  let source_fact label =
    match p.direction with
    | Forward ->
      let base =
        if Some label = entry_label then p.boundary else p.bottom
      in
      List.fold_left
        (fun acc pl ->
          match Hashtbl.find_opt by_label pl with
          | None -> acc
          | Some pb ->
            let f = Hashtbl.find res_out pl in
            let f = match p.edge with Some e -> e pb label f | None -> f in
            p.join acc f)
        base (preds_of label)
    | Backward ->
      let ss = succs_of label in
      let base = if ss = [] then p.boundary else p.bottom in
      List.fold_left
        (fun acc sl ->
          match Hashtbl.find_opt res_in sl with
          | None -> acc
          | Some f -> p.join acc f)
        base ss
  in
  let process label =
    match Hashtbl.find_opt by_label label with
    | None -> ()
    | Some b ->
      incr iterations;
      let n = (match Hashtbl.find_opt visits label with Some n -> n | None -> 0) + 1 in
      Hashtbl.replace visits label n;
      let fresh = source_fact label in
      let src_tab, dst_tab, requeue =
        match p.direction with
        | Forward -> (res_in, res_out, succs_of)
        | Backward -> (res_out, res_in, preds_of)
      in
      let old_src = Hashtbl.find src_tab label in
      let src =
        match p.widen with
        | Some w when n > p.widen_after -> w old_src (p.join old_src fresh)
        | _ -> p.join old_src fresh
      in
      Hashtbl.replace src_tab label src;
      let dst = p.transfer b src in
      let old_dst = Hashtbl.find dst_tab label in
      if not (p.equal dst old_dst) || not (p.equal src old_src) then begin
        Hashtbl.replace dst_tab label dst;
        List.iter (Worklist.push wl) (requeue label)
      end
  in
  (* seed in flow order so the common case converges in few sweeps *)
  let seed =
    match p.direction with
    | Forward -> List.map (fun (b : Block.t) -> b.Block.label) blocks
    | Backward -> List.rev_map (fun (b : Block.t) -> b.Block.label) blocks
  in
  List.iter (Worklist.push wl) seed;
  let rec drain () =
    match Worklist.pop wl with
    | None -> ()
    | Some label ->
      process label;
      drain ()
  in
  drain ();
  (* Widening overshoots inside loops: a block widened on the ascending
     climb keeps its jumped bound even when the stabilized inputs
     support a tighter one (a refined loop-exit edge, a bounded back
     edge).  The drained state is a post-fixpoint, so re-applying the
     equations without widening only shrinks facts while staying above
     the least fixpoint — two descending sweeps in flow order recover
     the lost precision (classic narrowing, bounded for trivial
     termination). *)
  if p.widen <> None then
    for _ = 1 to 2 do
      List.iter
        (fun label ->
          match Hashtbl.find_opt by_label label with
          | None -> ()
          | Some b ->
            incr iterations;
            let src = source_fact label in
            let src_tab, dst_tab =
              match p.direction with
              | Forward -> (res_in, res_out)
              | Backward -> (res_out, res_in)
            in
            Hashtbl.replace src_tab label src;
            Hashtbl.replace dst_tab label (p.transfer b src))
        seed
    done;
  { res_in; res_out; res_bottom = p.bottom; res_iterations = !iterations }
