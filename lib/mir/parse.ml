exception Error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Error (line, s))) fmt

(* ------------------------------------------------------------------ *)
(* Small string utilities (the format is line oriented)                 *)
(* ------------------------------------------------------------------ *)

let strip s =
  let is_ws c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ws s.[!i] do incr i done;
  while !j >= !i && is_ws s.[!j] do decr j done;
  if !j < !i then "" else String.sub s !i (!j - !i + 1)

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let drop_prefix prefix s = String.sub s (String.length prefix)
    (String.length s - String.length prefix)

let split_once sep s =
  match String.index_opt s sep with
  | Some i ->
    Some (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
  | None -> None

let split_all sep s =
  String.split_on_char sep s |> List.map strip |> List.filter (fun x -> x <> "")

(* ------------------------------------------------------------------ *)
(* Operand / small-term parsing                                         *)
(* ------------------------------------------------------------------ *)

let parse_reg line s =
  let s = strip s in
  if String.length s >= 2 && s.[0] = 'r' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> Reg.of_int n
    | _ -> fail line "bad register %S" s
  else fail line "bad register %S" s

let parse_operand line s =
  let s = strip s in
  if s = "" then fail line "empty operand"
  else if s.[0] = 'r' && String.length s > 1 && s.[1] >= '0' && s.[1] <= '9'
  then Operand.Reg (parse_reg line s)
  else
    match int_of_string_opt s with
    | Some n -> Operand.Imm n
    | None -> fail line "bad operand %S" s

let binop_of_name = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "mul" -> Some Insn.Mul
  | "div" -> Some Insn.Div
  | "rem" -> Some Insn.Rem
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "sll" -> Some Insn.Shl
  | "sra" -> Some Insn.Shr
  | _ -> None

let unop_of_name = function
  | "neg" -> Some Insn.Neg
  | "not" -> Some Insn.Not
  | _ -> None

let cond_of_mnemonic = function
  | "be" -> Some Cond.Eq
  | "bne" -> Some Cond.Ne
  | "bl" -> Some Cond.Lt
  | "ble" -> Some Cond.Le
  | "bg" -> Some Cond.Gt
  | "bge" -> Some Cond.Ge
  | _ -> None

(* "f(a, b)" -> (f, [a; b]) *)
let parse_call_shape line s =
  match String.index_opt s '(' with
  | None -> fail line "expected a call, got %S" s
  | Some i ->
    let name = strip (String.sub s 0 i) in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if not (String.length rest > 0 && rest.[String.length rest - 1] = ')') then
      fail line "unterminated call %S" s;
    let args_str = String.sub rest 0 (String.length rest - 1) in
    let args = split_all ',' args_str |> List.map (parse_operand line) in
    (name, args)

(* "M[sym + idx]" -> (sym, idx) *)
let parse_mem line s =
  let s = strip s in
  if not (starts_with "M[" s && s.[String.length s - 1] = ']') then
    fail line "expected a memory reference, got %S" s;
  let inner = String.sub s 2 (String.length s - 3) in
  match split_once '+' inner with
  | Some (sym, idx) -> (strip sym, parse_operand line idx)
  | None -> fail line "bad memory reference %S" s

(* ------------------------------------------------------------------ *)
(* Instructions                                                         *)
(* ------------------------------------------------------------------ *)

let parse_insn line s =
  let s = strip s in
  if s = "nop" then Insn.Nop
  else if starts_with "cmp " s then begin
    match split_all ',' (drop_prefix "cmp " s) with
    | [ a; b ] -> Insn.Cmp (parse_operand line a, parse_operand line b)
    | _ -> fail line "bad cmp %S" s
  end
  else if starts_with "call " s then begin
    let name, args = parse_call_shape line (drop_prefix "call " s) in
    Insn.Call (None, name, args)
  end
  else if starts_with "profile_range #" s then begin
    match split_all ',' (drop_prefix "profile_range #" s) with
    | [ id; r ] -> (
      match int_of_string_opt id with
      | Some id -> Insn.Profile_range (id, parse_reg line r)
      | None -> fail line "bad profile id in %S" s)
    | _ -> fail line "bad profile_range %S" s
  end
  else if starts_with "profile_comb #" s then begin
    match int_of_string_opt (strip (drop_prefix "profile_comb #" s)) with
    | Some id -> Insn.Profile_comb id
    | None -> fail line "bad profile_comb %S" s
  end
  else if starts_with "M[" s then begin
    (* store: M[sym + idx] = v *)
    match split_once '=' s with
    | Some (lhs, rhs) ->
      let sym, idx = parse_mem line lhs in
      Insn.Store (sym, idx, parse_operand line rhs)
    | None -> fail line "bad store %S" s
  end
  else begin
    (* rN = <rhs> *)
    match split_once '=' s with
    | None -> fail line "unrecognised instruction %S" s
    | Some (lhs, rhs) ->
      let dst = parse_reg line lhs in
      let rhs = strip rhs in
      if starts_with "M[" rhs then begin
        let sym, idx = parse_mem line rhs in
        Insn.Load (dst, sym, idx)
      end
      else if starts_with "call " rhs then begin
        let name, args = parse_call_shape line (drop_prefix "call " rhs) in
        Insn.Call (Some dst, name, args)
      end
      else begin
        (* "op a, b" | "unop a" | plain operand *)
        match split_once ' ' rhs with
        | Some (head, rest) when binop_of_name head <> None -> (
          let op = Option.get (binop_of_name head) in
          match split_all ',' rest with
          | [ a; b ] ->
            Insn.Binop (op, dst, parse_operand line a, parse_operand line b)
          | _ -> fail line "bad binop %S" s)
        | Some (head, rest) when unop_of_name head <> None ->
          Insn.Unop (Option.get (unop_of_name head), dst, parse_operand line rest)
        | _ -> Insn.Mov (dst, parse_operand line rhs)
      end
  end

(* ------------------------------------------------------------------ *)
(* Terminators                                                          *)
(* ------------------------------------------------------------------ *)

(* returns None when the line is not a terminator *)
let parse_term line s =
  let s = strip s in
  (* split off an optional "; delay: <insn>" suffix *)
  let body, delay, annul =
    match split_once ';' s with
    | Some (body, rest) ->
      let rest = strip rest in
      if starts_with "delay,a:" rest then
        (strip body, Some (parse_insn line (drop_prefix "delay,a:" rest)), true)
      else if starts_with "delay:" rest then
        (strip body, Some (parse_insn line (drop_prefix "delay:" rest)), false)
      else fail line "unexpected comment %S" rest
    | None -> (s, None, false)
  in
  let kind =
    if starts_with "jmp " body then Some (Block.Jmp (strip (drop_prefix "jmp " body)))
    else if body = "ret" then Some (Block.Ret None)
    else if starts_with "ret " body then
      Some (Block.Ret (Some (parse_operand line (drop_prefix "ret " body))))
    else if starts_with "jtab " body then begin
      match split_all ',' (drop_prefix "jtab " body) with
      | [ r; t ] when starts_with "T" t -> (
        match int_of_string_opt (drop_prefix "T" t) with
        | Some id -> Some (Block.Jtab (parse_reg line r, id))
        | None -> fail line "bad table id %S" t)
      | _ -> fail line "bad jtab %S" body
    end
    else if starts_with "switch " body then begin
      (* switch rN [v:L; v:L] default L *)
      match String.index_opt body '[' , String.index_opt body ']' with
      | Some i, Some j when j > i ->
        let r = parse_reg line (String.sub body 7 (i - 7)) in
        let cases =
          split_all ';' (String.sub body (i + 1) (j - i - 1))
          |> List.map (fun c ->
                 match split_once ':' c with
                 | Some (v, l) -> (
                   match int_of_string_opt (strip v) with
                   | Some v -> (v, strip l)
                   | None -> fail line "bad case %S" c)
                 | None -> fail line "bad case %S" c)
        in
        let after = strip (String.sub body (j + 1) (String.length body - j - 1)) in
        if starts_with "default " after then
          Some (Block.Switch (r, cases, strip (drop_prefix "default " after)))
        else fail line "missing default in %S" body
      | _ -> fail line "bad switch %S" body
    end
    else
      match split_once ' ' body with
      | Some (mn, rest) when cond_of_mnemonic mn <> None -> (
        let cond = Option.get (cond_of_mnemonic mn) in
        (* "-> taken | fall" *)
        let rest = strip rest in
        if not (starts_with "-> " rest) then fail line "bad branch %S" body
        else
          match split_once '|' (drop_prefix "-> " rest) with
          | Some (t, f) -> Some (Block.Br (cond, strip t, strip f))
          | None -> fail line "bad branch targets %S" body)
      | _ -> None
  in
  match kind with
  | Some kind ->
    let t = Block.term kind in
    t.Block.delay <- delay;
    t.Block.annul <- annul;
    Some t
  | None -> if delay <> None then fail line "delay on a non-terminator" else None

(* ------------------------------------------------------------------ *)
(* Program structure                                                    *)
(* ------------------------------------------------------------------ *)

type line_kind =
  | Lblank
  | Lglobal of Program.global
  | Lfunction of string * Reg.t list
  | Ltable of int * string array
  | Llabel of string
  | Lterm of Block.term
  | Linsn of Insn.t

let classify lineno raw =
  let s = strip raw in
  if s = "" then Lblank
  else if s.[0] = ';' then Lblank (* full-line comment *)
  else if starts_with "global " s then begin
    let rest = drop_prefix "global " s in
    let name_part, init =
      match split_once '=' rest with
      | Some (n, init) -> (strip n, Some init)
      | None -> (strip rest, None)
    in
    match String.index_opt name_part '[' with
    | Some i when name_part.[String.length name_part - 1] = ']' -> (
      let gname = String.sub name_part 0 i in
      let size_str =
        String.sub name_part (i + 1) (String.length name_part - i - 2)
      in
      match int_of_string_opt size_str with
      | Some size ->
        let init =
          Option.map
            (fun init_str ->
              let init_str = strip init_str in
              if
                String.length init_str >= 2
                && init_str.[0] = '{'
                && init_str.[String.length init_str - 1] = '}'
              then
                split_all ','
                  (String.sub init_str 1 (String.length init_str - 2))
                |> List.map (fun v ->
                       match int_of_string_opt v with
                       | Some v -> v
                       | None -> fail lineno "bad initialiser value %S" v)
                |> Array.of_list
              else fail lineno "bad initialiser %S" init_str)
            init
        in
        Lglobal { Program.gname; size; init }
      | None -> fail lineno "bad global size %S" size_str)
    | _ -> fail lineno "bad global %S" s
  end
  else if starts_with "function " s then begin
    let rest = drop_prefix "function " s in
    match String.index_opt rest '(' with
    | Some i
      when String.length rest >= 2
           && rest.[String.length rest - 1] = ':'
           && rest.[String.length rest - 2] = ')' ->
      let name = strip (String.sub rest 0 i) in
      let params_str = String.sub rest (i + 1) (String.length rest - i - 3) in
      let params = split_all ',' params_str |> List.map (parse_reg lineno) in
      Lfunction (name, params)
    | _ -> fail lineno "bad function header %S" s
  end
  else if starts_with "table T" s then begin
    match split_once ':' (drop_prefix "table T" s) with
    | Some (id, targets) -> (
      match int_of_string_opt (strip id) with
      | Some id ->
        let targets = strip targets in
        if
          String.length targets >= 2
          && targets.[0] = '['
          && targets.[String.length targets - 1] = ']'
        then
          Ltable
            ( id,
              Array.of_list
                (split_all ';' (String.sub targets 1 (String.length targets - 2)))
            )
        else fail lineno "bad table targets %S" targets
      | None -> fail lineno "bad table id %S" id)
    | None -> fail lineno "bad table %S" s
  end
  else
    match parse_term lineno s with
    | Some t -> Lterm t
    | None ->
      (* a label line ends with ':' and contains no spaces or '=' *)
      if
        String.length s > 1
        && s.[String.length s - 1] = ':'
        && (not (String.contains s ' '))
        && not (String.contains s '=')
      then Llabel (String.sub s 0 (String.length s - 1))
      else Linsn (parse_insn lineno s)

let program text =
  let prog = Program.make () in
  let current_fn : Func.t option ref = ref None in
  let current_label = ref None in
  let current_insns = ref [] in
  let pending_tables = ref [] in
  let lineno = ref 0 in
  let flush_tables fn =
    List.iter
      (fun (id, targets) ->
        let got = Func.add_jtable fn targets in
        if got <> id then fail !lineno "table T%d declared out of order" id)
      (List.rev !pending_tables);
    pending_tables := []
  in
  let close_block term =
    match !current_fn, !current_label with
    | Some fn, Some label ->
      let b = Block.make ~label (List.rev !current_insns) (Block.Jmp "?") in
      b.Block.term <- term;
      Func.add_block fn b;
      current_label := None;
      current_insns := []
    | _, None -> fail !lineno "terminator outside a block"
    | None, _ -> fail !lineno "code outside a function"
  in
  let finish_function () =
    (match !current_label with
    | Some l -> fail !lineno "block %s has no terminator" l
    | None -> ());
    match !current_fn with
    | Some fn ->
      (* advance the register counter past every referenced register so
         later fresh_reg allocations cannot collide *)
      let bump r = fn.Func.next_reg <- max fn.Func.next_reg (Reg.to_int r + 1) in
      List.iter bump fn.Func.params;
      List.iter
        (fun (b : Block.t) ->
          let see_insn i =
            List.iter bump (Insn.defs i);
            List.iter bump (Insn.uses i)
          in
          List.iter see_insn b.Block.insns;
          (match b.Block.term.Block.delay with Some i -> see_insn i | None -> ());
          List.iter bump (Liveness.term_uses b.Block.term))
        fn.Func.blocks;
      Program.add_func prog fn;
      current_fn := None
    | None -> ()
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         incr lineno;
         match classify !lineno raw with
         | Lblank -> ()
         | Lglobal g ->
           if !current_fn <> None then fail !lineno "global inside a function";
           Program.add_global prog g
         | Lfunction (name, params) ->
           finish_function ();
           current_fn := Some (Func.make ~name ~params)
         | Ltable (id, targets) -> (
           match !current_fn with
           | Some fn ->
             pending_tables := (id, targets) :: !pending_tables;
             flush_tables fn
           | None -> fail !lineno "table outside a function")
         | Llabel l -> (
           match !current_label with
           | Some pending -> fail !lineno "block %s has no terminator" pending
           | None -> current_label := Some l)
         | Lterm t -> close_block t
         | Linsn i -> (
           match !current_label with
           | Some _ -> current_insns := i :: !current_insns
           | None -> fail !lineno "instruction outside a block"))
  ;
  finish_function ();
  prog

let func text =
  let p = program text in
  match p.Program.funcs with
  | [ f ] -> f
  | fs -> raise (Error (0, Printf.sprintf "expected one function, got %d" (List.length fs)))
