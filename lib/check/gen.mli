(** Random-program generators for the correctness tooling.

    Two generator families live here:

    - the {b MiniC dispatch corpus}: source-level dispatch and switch
      programs plus small random CFGs, shared between the property tests
      ([test/test_properties.ml]) and any caller that wants source-level
      fuzz — extracted here so the test suite and the fuzzer draw from
      one corpus;
    - the {b MIR spec corpus}: structured descriptions of whole
      {!Mir.Program.t} values biased toward the shapes the reordering
      pass cares about — runs of range conditions on one variable in all
      four forms of Table 1 (plus the [!=] reading), intervening side
      effects, shared entries into the middle of a chain, and switch
      statements that {!Mopt.Switch_lower} turns into comparison
      sequences under all three heuristic sets.

    All generators are seeded QCheck2 generators; {!sample} and
    {!spec_of_seed} give deterministic draws.  {!shrink_spec} is the
    fuzzer's shrinker: it deletes conditions, switch cases, side effects
    and input bytes while the caller's predicate stays true, and every
    shrunk spec still builds a program that {!Mir.Validate.check}
    accepts (specs can only describe well-formed programs). *)

(** {2 MiniC dispatch corpus} *)

type cond =
  | Ceq of int
  | Cne of int
  | Clt of int
  | Cle of int
  | Cgt of int
  | Cge of int
  | Cbetween of int * int

val cond_to_c : cond -> string
val gen_cond : cond QCheck2.Gen.t

type dispatch = {
  conds : (cond * bool) list;  (** condition, side effect before it *)
  train : string;
  test : string;
}

val dispatch_source : dispatch -> string
(** Render as a MiniC program: [f] dispatches on the conditions, [main]
    hashes [f] over the input bytes and prints the hash and the
    side-effect counter. *)

val print_dispatch : dispatch -> string
val gen_input : string QCheck2.Gen.t
val gen_dispatch : dispatch QCheck2.Gen.t

val switch_source : int list -> string
(** A MiniC program switching on every input byte with the given case
    values. *)

val gen_switch_values : (int list * string) QCheck2.Gen.t
(** Case-value list (dense or strided) plus an input string. *)

val print_switch_values : int list * string -> string

val gen_cfg : (int * (int * int) list) QCheck2.Gen.t
(** Random small CFG spec: block count and per-block (taken, fall)
    target indices; block 0 is the entry, the last block returns. *)

val build_cfg : int * (int * int) list -> Mir.Func.t
val print_cfg : int * (int * int) list -> string

(** {2 MIR-level specs for the fuzzer} *)

type form =
  | F_eq of int            (** Form 1, [v = c] *)
  | F_ne of int            (** Form 1 through the [!=] reading *)
  | F_le of int            (** Form 2, [v <= c] *)
  | F_ge of int            (** Form 3, [v >= c] *)
  | F_between of int * int (** Form 4, [c1 <= v <= c2] *)

type cond_spec = {
  cs_form : form;
  cs_side : bool;  (** update a global before testing this condition *)
}

type seq_spec = {
  sq_conds : cond_spec list;  (** tested in order; nonoverlapping ranges *)
  sq_extra_entry : bool;
      (** add a second entry jumping into the middle of the chain, so a
          condition block has two predecessors (shared entries) *)
}

type switch_spec = {
  sw_cases : (int * int) list;  (** (case value, returned constant) *)
}

type spec = {
  sp_seq : seq_spec;
  sp_switch : switch_spec option;
  sp_heuristic : int;  (** 0, 1, 2 = heuristic set I, II, III *)
  sp_train : string;
  sp_test : string;
}

val heuristic_of_spec : spec -> Mopt.Switch_lower.heuristic_set

val to_program : spec -> Mir.Program.t
(** Build the whole program: a dispatch function [f] implementing the
    condition chain, an optional switch function [s] (with an unlowered
    [Switch] terminator), and a [main] that hashes both over the input
    bytes.  The result passes [Mir.Validate.check ~allow_switch:true]. *)

val forms : spec -> form list
(** The range-condition forms the spec exercises (coverage tallying). *)

val pp_spec : Format.formatter -> spec -> unit
val show_spec : spec -> string

val gen_spec : spec QCheck2.Gen.t
val spec_of_seed : int -> spec
(** Deterministic: [spec_of_seed s] draws {!gen_spec} from a fresh
    PRNG state seeded with [s]. *)

val sample : seed:int -> n:int -> 'a QCheck2.Gen.t -> 'a list
(** [n] deterministic draws from one seeded PRNG state. *)

val shrink_spec : keep:(spec -> bool) -> spec -> spec
(** Greedy minimization: repeatedly drop the switch, switch cases, the
    extra entry, conditions, side effects and halves of the inputs,
    keeping a change only when [keep] still holds.  [keep] is assumed to
    hold for the input spec. *)
