(* Random-program generators: the MiniC dispatch corpus shared with the
   property tests, and the MIR-level spec corpus the fuzzer minimizes.
   Everything is a QCheck2 generator so draws are seeded and shrinkable. *)

module G = QCheck2.Gen

(* ------------------------------------------------------------------ *)
(* MiniC dispatch corpus                                                *)
(* ------------------------------------------------------------------ *)

type cond =
  | Ceq of int
  | Cne of int
  | Clt of int
  | Cle of int
  | Cgt of int
  | Cge of int
  | Cbetween of int * int

let cond_to_c = function
  | Ceq k -> Printf.sprintf "c == %d" k
  | Cne k -> Printf.sprintf "c != %d" k
  | Clt k -> Printf.sprintf "c < %d" k
  | Cle k -> Printf.sprintf "c <= %d" k
  | Cgt k -> Printf.sprintf "c > %d" k
  | Cge k -> Printf.sprintf "c >= %d" k
  | Cbetween (a, b) -> Printf.sprintf "c >= %d && c <= %d" a b

let gen_cond =
  G.(
    let* k = int_range 0 120 in
    let* k2 = int_range 1 20 in
    oneofl [ Ceq k; Cne k; Clt k; Cle k; Cgt k; Cge k; Cbetween (k, k + k2) ])

type dispatch = {
  conds : (cond * bool) list;
  train : string;
  test : string;
}

let dispatch_source p =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "int g;\nint f(int c) {\n";
  List.iteri
    (fun i (cond, side) ->
      if side && i > 0 then Buffer.add_string buf "  g = g + 1;\n";
      Buffer.add_string buf
        (Printf.sprintf "  if (%s) return %d;\n" (cond_to_c cond) (i + 1)))
    p.conds;
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { s = s * \
     31 + f(c); s = s % 65536; } print_int(s); putchar(' '); print_int(g); \
     return 0; }\n";
  Buffer.contents buf

let print_dispatch p =
  Printf.sprintf "%s\n-- train: %S\n-- test: %S" (dispatch_source p) p.train
    p.test

let gen_input =
  G.(
    let* n = int_range 0 400 in
    let* chars = list_size (return n) (int_range 0 126) in
    return
      (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) chars)))

let gen_dispatch =
  G.(
    let* n = int_range 2 6 in
    let* conds = list_size (return n) gen_cond in
    let* sides =
      list_size (return n) (frequencyl [ (4, false); (1, true) ])
    in
    let* train = gen_input in
    let* test = gen_input in
    return { conds = List.combine conds sides; train; test })

let switch_source values =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    "int main() { int c; int s = 0; while ((c = getchar()) != EOF) { switch \
     (c) {\n";
  List.iteri
    (fun i v ->
      Buffer.add_string buf
        (Printf.sprintf "case %d: s += %d; break;\n" v (i + 1)))
    values;
  Buffer.add_string buf "default: s--; } } print_int(s); return 0; }\n";
  Buffer.contents buf

let gen_switch_values =
  G.(
    let* n = int_range 1 18 in
    let* dense = bool in
    let* values =
      if dense then return (List.init n (fun i -> 40 + i))
      else
        let* step = int_range 2 9 in
        return (List.init n (fun i -> 40 + (i * step)))
    in
    let* input = gen_input in
    return (values, input))

let print_switch_values (values, input) =
  Printf.sprintf "cases [%s] input %S"
    (String.concat ";" (List.map string_of_int values))
    input

(* random small CFG: n blocks, each ending in a branch or jump to random
   targets (block 0 is the entry; the last block returns) *)
let gen_cfg =
  G.(
    let* n = int_range 2 10 in
    let* choices =
      list_size (return n) (pair (int_range 0 (n - 1)) (int_range 0 (n - 1)))
    in
    return (n, choices))

let build_cfg (n, choices) =
  let fn = Mir.Func.make ~name:"g" ~params:[ Mir.Reg.of_int 0 ] in
  let label i = Printf.sprintf "b%d" i in
  List.iteri
    (fun i (t, f) ->
      let block =
        if i = n - 1 then Mir.Block.make ~label:(label i) [] (Mir.Block.Ret None)
        else if t = f then
          Mir.Block.make ~label:(label i) [] (Mir.Block.Jmp (label t))
        else
          Mir.Block.make ~label:(label i)
            [ Mir.Insn.Cmp (Mir.Operand.Reg (Mir.Reg.of_int 0), Mir.Operand.Imm 0) ]
            (Mir.Block.Br (Mir.Cond.Eq, label t, label f))
      in
      Mir.Func.add_block fn block)
    choices;
  fn

let print_cfg (n, choices) =
  Printf.sprintf "n=%d [%s]" n
    (String.concat ";"
       (List.map (fun (t, f) -> Printf.sprintf "(%d,%d)" t f) choices))

(* ------------------------------------------------------------------ *)
(* MIR-level specs                                                      *)
(* ------------------------------------------------------------------ *)

type form =
  | F_eq of int
  | F_ne of int
  | F_le of int
  | F_ge of int
  | F_between of int * int

type cond_spec = {
  cs_form : form;
  cs_side : bool;
}

type seq_spec = {
  sq_conds : cond_spec list;
  sq_extra_entry : bool;
}

type switch_spec = { sw_cases : (int * int) list }

type spec = {
  sp_seq : seq_spec;
  sp_switch : switch_spec option;
  sp_heuristic : int;
  sp_train : string;
  sp_test : string;
}

let heuristic_of_spec spec =
  match spec.sp_heuristic with
  | 0 -> Mopt.Switch_lower.set_i
  | 1 -> Mopt.Switch_lower.set_ii
  | _ -> Mopt.Switch_lower.set_iii

let forms spec = List.map (fun c -> c.cs_form) spec.sp_seq.sq_conds

let pp_form ppf = function
  | F_eq c -> Format.fprintf ppf "v == %d" c
  | F_ne c -> Format.fprintf ppf "v != %d" c
  | F_le c -> Format.fprintf ppf "v <= %d" c
  | F_ge c -> Format.fprintf ppf "v >= %d" c
  | F_between (a, b) -> Format.fprintf ppf "%d <= v <= %d" a b

let pp_spec ppf spec =
  Format.fprintf ppf "@[<v>dispatch chain (heuristic set %s):@,"
    (heuristic_of_spec spec).Mopt.Switch_lower.hs_name;
  List.iteri
    (fun i c ->
      Format.fprintf ppf "  %d: %a -> return %d%s@," (i + 1) pp_form c.cs_form
        (i + 1)
        (if c.cs_side then "  (side effect before test)" else ""))
    spec.sp_seq.sq_conds;
  if spec.sp_seq.sq_extra_entry then
    Format.fprintf ppf "  + second entry into the middle of the chain@,";
  (match spec.sp_switch with
  | None -> ()
  | Some sw ->
    Format.fprintf ppf "switch on [%s]@,"
      (String.concat ";" (List.map (fun (v, _) -> string_of_int v) sw.sw_cases)));
  Format.fprintf ppf "train: %S@,test: %S@]" spec.sp_train spec.sp_test

let show_spec spec = Format.asprintf "%a" pp_spec spec

(* ---- building the program ---- *)

let reg = Mir.Reg.of_int
let rop n = Mir.Operand.Reg (reg n)
let imm n = Mir.Operand.Imm n

(* g = g + 1, avoiding the branch variable (r0) *)
let side_insns =
  [
    Mir.Insn.Load (reg 1, "g", imm 0);
    Mir.Insn.Binop (Mir.Insn.Add, reg 2, rop 1, imm 1);
    Mir.Insn.Store ("g", imm 0, rop 2);
  ]

let max_const spec =
  List.fold_left
    (fun acc c ->
      match c.cs_form with
      | F_eq k | F_ne k | F_le k | F_ge k -> max acc k
      | F_between (_, b) -> max acc b)
    0 spec.sp_seq.sq_conds

(* the dispatch function: a chain of range-condition blocks on r0 *)
let build_f spec =
  let fn = Mir.Func.make ~name:"f" ~params:[ reg 0 ] in
  let conds = Array.of_list spec.sp_seq.sq_conds in
  let n = Array.length conds in
  let cond_label i = Printf.sprintf "f.c%d" i in
  let exit_label i = Printf.sprintf "f.x%d" i in
  let next_label i = if i + 1 < n then cond_label (i + 1) else "f.d" in
  (* optional second entry: values above every tested constant jump into
     the middle of the chain, giving that block two predecessors *)
  if spec.sp_seq.sq_extra_entry && n >= 3 then begin
    let k = max_const spec + 5 in
    let mid = n / 2 in
    Mir.Func.add_block fn
      (Mir.Block.make ~label:"f.entry"
         [ Mir.Insn.Cmp (rop 0, imm k) ]
         (Mir.Block.Br (Mir.Cond.Gt, cond_label mid, cond_label 0)))
  end;
  Array.iteri
    (fun i c ->
      let sides = if c.cs_side then side_insns else [] in
      match c.cs_form with
      | F_eq k ->
        Mir.Func.add_block fn
          (Mir.Block.make ~label:(cond_label i)
             (sides @ [ Mir.Insn.Cmp (rop 0, imm k) ])
             (Mir.Block.Br (Mir.Cond.Eq, exit_label i, next_label i)))
      | F_ne k ->
        (* the Ne reading: the taken edge continues the sequence *)
        Mir.Func.add_block fn
          (Mir.Block.make ~label:(cond_label i)
             (sides @ [ Mir.Insn.Cmp (rop 0, imm k) ])
             (Mir.Block.Br (Mir.Cond.Ne, next_label i, exit_label i)))
      | F_le k ->
        Mir.Func.add_block fn
          (Mir.Block.make ~label:(cond_label i)
             (sides @ [ Mir.Insn.Cmp (rop 0, imm k) ])
             (Mir.Block.Br (Mir.Cond.Le, exit_label i, next_label i)))
      | F_ge k ->
        Mir.Func.add_block fn
          (Mir.Block.make ~label:(cond_label i)
             (sides @ [ Mir.Insn.Cmp (rop 0, imm k) ])
             (Mir.Block.Br (Mir.Cond.Ge, exit_label i, next_label i)))
      | F_between (lo, hi) ->
        (* Form 4: two compare/branch blocks sharing the continue edge *)
        let second = cond_label i ^ "b" in
        Mir.Func.add_block fn
          (Mir.Block.make ~label:(cond_label i)
             (sides @ [ Mir.Insn.Cmp (rop 0, imm lo) ])
             (Mir.Block.Br (Mir.Cond.Lt, next_label i, second)));
        Mir.Func.add_block fn
          (Mir.Block.make ~label:second
             [ Mir.Insn.Cmp (rop 0, imm hi) ]
             (Mir.Block.Br (Mir.Cond.Le, exit_label i, next_label i))))
    conds;
  for i = 0 to n - 1 do
    Mir.Func.add_block fn
      (Mir.Block.make ~label:(exit_label i) [] (Mir.Block.Ret (Some (imm (i + 1)))))
  done;
  Mir.Func.add_block fn (Mir.Block.make ~label:"f.d" [] (Mir.Block.Ret (Some (imm 0))));
  fn.Mir.Func.next_reg <- 16;
  fn

let build_s sw =
  let fn = Mir.Func.make ~name:"s" ~params:[ reg 0 ] in
  let cases =
    List.mapi (fun i (v, _) -> (v, Printf.sprintf "s.k%d" i)) sw.sw_cases
  in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"s.entry" []
       (Mir.Block.Switch (reg 0, cases, "s.d")));
  List.iteri
    (fun i (_, result) ->
      Mir.Func.add_block fn
        (Mir.Block.make ~label:(Printf.sprintf "s.k%d" i) []
           (Mir.Block.Ret (Some (imm result)))))
    sw.sw_cases;
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"s.d" [] (Mir.Block.Ret (Some (imm 0))));
  fn.Mir.Func.next_reg <- 16;
  fn

(* main: acc = ((acc * 31 + f(c)) + s(c)) mod 65536 over the input bytes,
   then print acc and the side-effect counter *)
let build_main ~with_switch =
  let fn = Mir.Func.make ~name:"main" ~params:[] in
  let acc = 0 and c = 1 and t = 2 and t2 = 3 and fr = 4 and sr = 5 and gv = 6 in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"main.entry"
       [ Mir.Insn.Mov (reg acc, imm 0) ]
       (Mir.Block.Jmp "main.loop"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"main.loop"
       [
         Mir.Insn.Call (Some (reg c), "getchar", []);
         Mir.Insn.Cmp (rop c, imm (-1));
       ]
       (Mir.Block.Br (Mir.Cond.Eq, "main.end", "main.body")));
  let body =
    [
      Mir.Insn.Call (Some (reg fr), "f", [ rop c ]);
      Mir.Insn.Binop (Mir.Insn.Mul, reg t, rop acc, imm 31);
      Mir.Insn.Binop (Mir.Insn.Add, reg t2, rop t, rop fr);
      Mir.Insn.Binop (Mir.Insn.Rem, reg acc, rop t2, imm 65536);
    ]
    @ (if with_switch then
         [
           Mir.Insn.Call (Some (reg sr), "s", [ rop c ]);
           Mir.Insn.Binop (Mir.Insn.Add, reg t, rop acc, rop sr);
           Mir.Insn.Binop (Mir.Insn.Rem, reg acc, rop t, imm 65536);
         ]
       else [])
  in
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"main.body" body (Mir.Block.Jmp "main.loop"));
  Mir.Func.add_block fn
    (Mir.Block.make ~label:"main.end"
       [
         Mir.Insn.Call (None, "print_int", [ rop acc ]);
         Mir.Insn.Call (None, "putchar", [ imm 32 ]);
         Mir.Insn.Load (reg gv, "g", imm 0);
         Mir.Insn.Call (None, "print_int", [ rop gv ]);
       ]
       (Mir.Block.Ret (Some (imm 0))));
  fn.Mir.Func.next_reg <- 16;
  fn

let to_program spec =
  let p = Mir.Program.make () in
  Mir.Program.add_global p { Mir.Program.gname = "g"; size = 1; init = None };
  Mir.Program.add_func p (build_f spec);
  (match spec.sp_switch with
  | Some sw -> Mir.Program.add_func p (build_s sw)
  | None -> ());
  Mir.Program.add_func p (build_main ~with_switch:(spec.sp_switch <> None));
  p

(* ---- the generator ---- *)

(* ascending, gapped constants so the chain's ranges never overlap and
   the whole run is detectable as one sequence *)
let gen_conds =
  G.(
    let* n = int_range 2 5 in
    let rec go i base acc =
      if i >= n then return (List.rev acc)
      else
        let* gap = int_range 3 20 in
        let base = base + gap in
        let* side = frequencyl [ (3, false); (1, true) ] in
        let* choice =
          frequency
            ([
               (4, return (F_eq base, base));
               (2, return (F_ne base, base));
               (3,
                let* w = int_range 1 12 in
                return (F_between (base, base + w), base + w));
             ]
            @ (if i = 0 then [ (2, return (F_le base, base)) ] else [])
            @ if i = n - 1 then [ (2, return (F_ge base, base)) ] else [])
        in
        let form, top = choice in
        go (i + 1) top ({ cs_form = form; cs_side = side } :: acc)
    in
    let* base = int_range 2 30 in
    go 0 base [])

let gen_switch_spec =
  G.(
    let* n = int_range 3 14 in
    let* base = int_range 40 70 in
    let* stride = frequencyl [ (2, 1); (1, 2); (1, 3); (1, 7) ] in
    return
      { sw_cases = List.init n (fun i -> (base + (i * stride), (i * 3) + 2)) })

(* input bytes biased toward the constants the spec tests, so training
   runs actually exercise the ranges *)
let interesting_values spec =
  let add acc v = if v >= 0 && v <= 126 then v :: acc else acc in
  let of_form acc = function
    | F_eq c | F_ne c | F_le c | F_ge c ->
      List.fold_left add acc [ c - 1; c; c + 1 ]
    | F_between (a, b) ->
      List.fold_left add acc [ a - 1; a; (a + b) / 2; b; b + 1 ]
  in
  let acc = List.fold_left of_form [] (forms spec) in
  let acc =
    match spec.sp_switch with
    | None -> acc
    | Some sw -> List.fold_left (fun acc (v, _) -> add acc v) acc sw.sw_cases
  in
  match acc with [] -> [ 0 ] | l -> l

let gen_biased_input interesting =
  G.(
    let* n = int_range 0 300 in
    let* chars =
      list_size (return n)
        (frequency [ (3, oneofl interesting); (2, int_range 0 126) ])
    in
    return
      (String.concat "" (List.map (fun c -> String.make 1 (Char.chr c)) chars)))

let gen_spec =
  G.(
    let* conds = gen_conds in
    let* extra = frequencyl [ (3, false); (1, true) ] in
    let* switch = frequency [ (1, return None); (1, map Option.some gen_switch_spec) ] in
    let* heuristic = int_range 0 2 in
    let partial =
      {
        sp_seq = { sq_conds = conds; sq_extra_entry = extra };
        sp_switch = switch;
        sp_heuristic = heuristic;
        sp_train = "";
        sp_test = "";
      }
    in
    let interesting = interesting_values partial in
    let* train = gen_biased_input interesting in
    let* test = gen_biased_input interesting in
    return { partial with sp_train = train; sp_test = test })

let spec_of_seed seed = G.generate1 ~rand:(Random.State.make [| seed |]) gen_spec

let sample ~seed ~n gen =
  let rand = Random.State.make [| seed |] in
  List.init n (fun _ -> G.generate1 ~rand gen)

(* ---- shrinking ---- *)

let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let halves s =
  let len = String.length s in
  if len = 0 then []
  else [ ""; String.sub s 0 (len / 2); String.sub s (len / 2) (len - len / 2) ]

(* candidate one-step reductions, most aggressive first; every candidate
   strictly reduces the spec's size measure, so the greedy loop ends *)
let reductions spec =
  let seq = spec.sp_seq in
  let with_seq sq = { spec with sp_seq = sq } in
  List.concat
    [
      (match spec.sp_switch with
      | Some _ -> [ { spec with sp_switch = None } ]
      | None -> []);
      (if seq.sq_extra_entry then
         [ with_seq { seq with sq_extra_entry = false } ]
       else []);
      List.init (List.length seq.sq_conds) (fun i ->
          with_seq { seq with sq_conds = drop_nth seq.sq_conds i });
      List.concat
        (List.mapi
           (fun i c ->
             if c.cs_side then
               [
                 with_seq
                   {
                     seq with
                     sq_conds =
                       List.mapi
                         (fun j c -> if i = j then { c with cs_side = false } else c)
                         seq.sq_conds;
                   };
               ]
             else [])
           seq.sq_conds);
      (match spec.sp_switch with
      | Some sw when List.length sw.sw_cases > 1 ->
        List.init (List.length sw.sw_cases) (fun i ->
            { spec with sp_switch = Some { sw_cases = drop_nth sw.sw_cases i } })
      | Some _ | None -> []);
      List.map (fun t -> { spec with sp_train = t }) (halves spec.sp_train);
      List.map (fun t -> { spec with sp_test = t }) (halves spec.sp_test);
    ]

let measure spec =
  List.length spec.sp_seq.sq_conds
  + List.fold_left
      (fun acc c -> if c.cs_side then acc + 1 else acc)
      0 spec.sp_seq.sq_conds
  + (if spec.sp_seq.sq_extra_entry then 1 else 0)
  + (match spec.sp_switch with
    | None -> 0
    | Some sw -> 1 + List.length sw.sw_cases)
  + String.length spec.sp_train
  + String.length spec.sp_test

let shrink_spec ~keep spec =
  let rec go spec =
    let smaller =
      List.find_opt
        (fun candidate ->
          measure candidate < measure spec
          && (try keep candidate with _ -> false))
        (reductions spec)
    in
    match smaller with None -> spec | Some s -> go s
  in
  go spec
