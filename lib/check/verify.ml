module Range = Reorder.Range
module Detect = Reorder.Detect
module Pass = Reorder.Pass

type seq_result = {
  v_seq_id : int;
  v_func : string;
  v_kind : [ `Reordered | `Coalesced | `Unchanged ];
  v_pieces : int;
  v_errors : string list;
}

type summary = {
  seq_results : seq_result list;
  global_errors : string list;
}

let ok s =
  s.global_errors = []
  && List.for_all (fun r -> r.v_errors = []) s.seq_results

let all_errors s =
  List.map (fun e -> "program: " ^ e) s.global_errors
  @ List.concat_map
      (fun r ->
        List.map
          (fun e -> Printf.sprintf "seq %d (%s): %s" r.v_seq_id r.v_func e)
          r.v_errors)
      s.seq_results

let pp_summary ppf s =
  let certified =
    List.length (List.filter (fun r -> r.v_errors = []) s.seq_results)
  in
  Format.fprintf ppf "@[<v>verify: %d/%d sequences certified (%d pieces)@,"
    certified
    (List.length s.seq_results)
    (List.fold_left (fun acc r -> acc + r.v_pieces) 0 s.seq_results);
  List.iter (fun e -> Format.fprintf ppf "  ERROR %s@," e) (all_errors s);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Interval sets                                                        *)
(* ------------------------------------------------------------------ *)

(* sorted, disjoint, non-adjacent inclusive intervals inside
   [Range.min_value, Range.max_value]; all compared constants are
   strictly inside (Detect's [in_bounds]), so the +-1 arithmetic below
   stays in bounds *)
module Iset = struct
  type t = (int * int) list

  let full = [ (Range.min_value, Range.max_value) ]
  let is_empty s = s = []

  let norm s =
    let s =
      List.filter_map
        (fun (lo, hi) ->
          let lo = max lo Range.min_value and hi = min hi Range.max_value in
          if lo > hi then None else Some (lo, hi))
        s
    in
    let s = List.sort compare s in
    let rec merge = function
      | (a, b) :: (c, d) :: rest when c <= b + 1 -> merge ((a, max b d) :: rest)
      | x :: rest -> x :: merge rest
      | [] -> []
    in
    merge s

  let inter a b =
    List.concat_map
      (fun (alo, ahi) ->
        List.filter_map
          (fun (blo, bhi) ->
            let lo = max alo blo and hi = min ahi bhi in
            if lo > hi then None else Some (lo, hi))
          b)
      a
    |> norm

  let diff a b =
    let sub_one (lo, hi) (blo, bhi) =
      if bhi < lo || blo > hi then [ (lo, hi) ]
      else
        (if blo > lo then [ (lo, blo - 1) ] else [])
        @ if bhi < hi then [ (bhi + 1, hi) ] else []
    in
    List.fold_left
      (fun acc cut -> List.concat_map (fun iv -> sub_one iv cut) acc)
      a b
    |> norm

  (* values satisfying [cmp v,c; b<cond>] *)
  let of_cond cond c =
    norm
      (match cond with
      | Mir.Cond.Eq -> [ (c, c) ]
      | Mir.Cond.Ne -> [ (Range.min_value, c - 1); (c + 1, Range.max_value) ]
      | Mir.Cond.Lt -> [ (Range.min_value, c - 1) ]
      | Mir.Cond.Le -> [ (Range.min_value, c) ]
      | Mir.Cond.Gt -> [ (c + 1, Range.max_value) ]
      | Mir.Cond.Ge -> [ (c, Range.max_value) ])

  let of_range r = [ (Range.lo r, Range.hi r) ]

  let pp ppf s =
    let one ppf (lo, hi) =
      if lo = hi then Format.fprintf ppf "%d" lo
      else Format.fprintf ppf "%d..%d" lo hi
    in
    Format.fprintf ppf "{%a}" (Format.pp_print_list one) s
end

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                       *)
(* ------------------------------------------------------------------ *)

let same_insns a b = List.equal Mir.Insn.equal a b

(* does the (unchanged, certified elsewhere) block at [label] consume the
   condition codes its predecessor leaves behind?  [ccl] is the
   cc-liveness analysis of the ORIGINAL function, so the answer follows
   [Jmp]-only forwarders and knows calls clobber the global cc — the
   same oracle {!Reorder.Apply} plans with. *)
let cc_needing ccl label = Analysis.Cc_live.live_in ccl label

(* drop the last compare of an instruction list, wherever it sits *)
let remove_last_cmp insns =
  let rec go post = function
    | Mir.Insn.Cmp _ :: rev_pre -> Some (List.rev_append rev_pre post)
    | i :: rest -> go (i :: post) rest
    | [] -> None
  in
  go [] (List.rev insns)

(* side effects the original sequence executes before exiting through the
   item at 0-based position [pos] (the head item never has any) *)
let prefix_insns items_arr pos =
  let out = ref [] in
  for i = 1 to pos do
    out := !out @ items_arr.(i).Detect.sides
  done;
  !out

(* what the original program guarantees on an exit edge *)
type expectation = {
  x_target : string;
  x_pre : Mir.Insn.t list;
  x_cc : (int * bool) option;  (* constant, operand-swapped *)
}

let item_expectation items_arr pos =
  let item = items_arr.(pos) in
  {
    x_target = item.Detect.target;
    x_pre = prefix_insns items_arr pos;
    x_cc = Some (item.Detect.exit_cc_const, item.Detect.exit_cc_swapped);
  }

let default_expectation (seq : Detect.t) items_arr =
  {
    x_target = seq.Detect.default_target;
    x_pre = prefix_insns items_arr (Array.length items_arr - 1);
    x_cc = Option.map (fun c -> (c, false)) seq.Detect.default_cc_const;
  }

let rec strip_prefix expected actual =
  match (expected, actual) with
  | [], rest -> Some rest
  | e :: es, a :: rest when Mir.Insn.equal e a -> strip_prefix es rest
  | _ -> None

(* the cc pair left after executing [insns] with [init] on entry, as
   (constant, swapped): [cmp var,#c] gives [(c, false)], the swapped
   [cmp #c,var] gives [(c, true)].  A compare not against the sequence
   variable, or a call (the machine's single cc register is global and
   callee-clobbered), leaves the pair unknown. *)
let cc_after ~var init insns =
  List.fold_left
    (fun acc i ->
      match i with
      | Mir.Insn.Cmp (Mir.Operand.Reg r, Mir.Operand.Imm c)
        when Mir.Reg.equal r var ->
        Some (c, false)
      | Mir.Insn.Cmp (Mir.Operand.Imm c, Mir.Operand.Reg r)
        when Mir.Reg.equal r var ->
        Some (c, true)
      | Mir.Insn.Cmp _ | Mir.Insn.Call _ -> None
      | _ -> acc)
    init insns

(* ------------------------------------------------------------------ *)
(* Certifying one reordered sequence                                    *)
(* ------------------------------------------------------------------ *)

type leaf = {
  l_label : string;
  l_values : Iset.t;
  l_cc : int option;  (* last compare constant along the chain path *)
}

(* abstract interpretation of the replica chain: split the full integer
   line at every compare/branch until a non-chain block is reached *)
let walk_chain ~fn_before ~fn_after ~var ~entry =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := m :: !errors) fmt in
  let leaves = ref [] in
  let visited_chain = ref [] in
  let is_fresh label = Mir.Func.find_block_opt fn_before label = None in
  let rec go label values cc path =
    if Iset.is_empty values then ()
    else if List.mem label path then
      err "replica chain cycles through %s" label
    else
      match Mir.Func.find_block_opt fn_after label with
      | None -> err "chain reaches undefined label %s" label
      | Some b -> (
        match b.Mir.Block.term.kind with
        | Mir.Block.Br (cond, taken, fall) when is_fresh label ->
          (* a chain block: at most one compare of the sequence variable *)
          if not (List.mem label !visited_chain) then
            visited_chain := label :: !visited_chain;
          if b.Mir.Block.term.delay <> None then
            err "chain block %s has a filled delay slot" label;
          let const =
            match b.Mir.Block.insns with
            | [] -> cc
            | [ Mir.Insn.Cmp (Mir.Operand.Reg r, Mir.Operand.Imm c) ]
              when Mir.Reg.equal r var ->
              Some c
            | _ ->
              err "chain block %s has unexpected instructions" label;
              None
          in
          (match const with
          | None -> err "chain block %s branches on unknown condition codes" label
          | Some c ->
            let sat = Iset.inter values (Iset.of_cond cond c) in
            let unsat = Iset.diff values sat in
            let path = label :: path in
            go taken sat (Some c) path;
            go fall unsat (Some c) path)
        | _ -> leaves := { l_label = label; l_values = values; l_cc = cc } :: !leaves)
  in
  go entry Iset.full None [];
  (List.rev !leaves, !visited_chain, List.rev !errors)

(* the chain edges a run of the program can actually take: retargeting
   one of these is observable, retargeting a dead edge (empty value set)
   is not — {!Fuzz}'s injection mode must only plant bugs on live edges *)
let live_leaf_edges ~fn_before ~fn_after ~var ~entry =
  let edges = ref [] in
  let is_fresh label = Mir.Func.find_block_opt fn_before label = None in
  let is_chain label =
    is_fresh label
    &&
    match Mir.Func.find_block_opt fn_after label with
    | Some b -> (
      match b.Mir.Block.term.kind with Mir.Block.Br _ -> true | _ -> false)
    | None -> false
  in
  let rec go label values cc path =
    if Iset.is_empty values || List.mem label path then ()
    else
      match Mir.Func.find_block_opt fn_after label with
      | Some b when is_chain label -> (
        match b.Mir.Block.term.kind with
        | Mir.Block.Br (cond, taken, fall) -> (
          let const =
            match b.Mir.Block.insns with
            | [] -> cc
            | [ Mir.Insn.Cmp (Mir.Operand.Reg r, Mir.Operand.Imm c) ]
              when Mir.Reg.equal r var ->
              Some c
            | _ -> None
          in
          match const with
          | None -> ()
          | Some c ->
            let sat = Iset.inter values (Iset.of_cond cond c) in
            let unsat = Iset.diff values sat in
            let path = label :: path in
            let follow dir succ vs =
              if not (Iset.is_empty vs) then
                if is_chain succ then go succ vs (Some c) path
                else edges := (label, dir, succ) :: !edges
            in
            follow `Taken taken sat;
            follow `Fall fall unsat)
        | _ -> ())
      | _ -> ()
  in
  go entry Iset.full None [];
  List.rev !edges

(* follow empty forwarding blocks ([Jmp]-only, no delay) to the label a
   jump really lands on.  Sequences applied earlier in the same pass may
   have rewritten a later sequence's exit target into such a forwarder
   (head surgery leaves [jmp replica]); jumping past it is observably
   identical, and the forwarder's own rewrite is certified separately. *)
let resolve fn label =
  let rec go label fuel =
    if fuel = 0 then label
    else
      match Mir.Func.find_block_opt fn label with
      | Some b
        when b.Mir.Block.insns = [] && b.Mir.Block.term.delay = None -> (
        match b.Mir.Block.term.kind with
        | Mir.Block.Jmp t -> go t (fuel - 1)
        | _ -> label)
      | _ -> label
  in
  go label 64

(* certify that one leaf edge, restricted to [values], provides what the
   original program guarantees for those values *)
let pp_cc ppf (c, swapped) =
  Format.fprintf ppf "%d%s" c (if swapped then " (swapped)" else "")

let check_edge ~ccl ~fn_before ~fn_after ~var (leaf : leaf) values
    (x : expectation) add_err =
  let err fmt = Format.kasprintf add_err fmt in
  let describe = Format.asprintf "values %a" Iset.pp values in
  let same_target t =
    t = x.x_target || resolve fn_after t = resolve fn_after x.x_target
  in
  let needs_cc = cc_needing ccl x.x_target in
  let check_cc given =
    if needs_cc then
      match (given, x.x_cc) with
      | Some g, Some w when g = w -> ()
      | Some g, Some w ->
        err "%s: target %s consumes condition codes of %a but the edge leaves %a"
          describe x.x_target pp_cc w pp_cc g
      | _, None ->
        err "%s: target %s consumes condition codes but the original edge \
             constant is unknown"
          describe x.x_target
      | None, _ ->
        err "%s: target %s consumes condition codes but the edge sets none"
          describe x.x_target
  in
  let leaf_cc = Option.map (fun c -> (c, false)) leaf.l_cc in
  match Mir.Func.find_block_opt fn_before leaf.l_label with
  | Some _ ->
    (* direct edge into original code *)
    if leaf.l_label <> x.x_target then
      err "%s: reach %s, original program reaches %s" describe leaf.l_label
        x.x_target
    else if x.x_pre <> [] then
      err "%s: direct edge to %s skips duplicated side effects" describe
        x.x_target
    else check_cc leaf_cc
  | None -> (
    (* a spliced edge block *)
    match Mir.Func.find_block_opt fn_after leaf.l_label with
    | None -> err "%s: edge reaches undefined label %s" describe leaf.l_label
    | Some b -> (
      if b.Mir.Block.term.delay <> None then
        err "%s: edge block %s has a filled delay slot" describe leaf.l_label;
      match strip_prefix x.x_pre b.Mir.Block.insns with
      | None ->
        err "%s: edge block %s does not start with the original side effects"
          describe leaf.l_label
      | Some rest -> (
        let reestablishment = function
          | [ Mir.Insn.Cmp (Mir.Operand.Reg r, Mir.Operand.Imm c) ]
            when Mir.Reg.equal r var ->
            Some (c, false)
          | [ Mir.Insn.Cmp (Mir.Operand.Imm c, Mir.Operand.Reg r) ]
            when Mir.Reg.equal r var ->
            Some (c, true)
          | _ -> None
        in
        match (rest, b.Mir.Block.term.kind) with
        | [], Mir.Block.Jmp t ->
          if not (same_target t) then
            err "%s: edge block %s jumps to %s, original target is %s" describe
              leaf.l_label t x.x_target
          else check_cc (cc_after ~var leaf_cc b.Mir.Block.insns)
        | rest, Mir.Block.Jmp t when reestablishment rest <> None ->
          (* condition-code reestablishment (either operand order) *)
          let c, swapped = Option.get (reestablishment rest) in
          if not (same_target t) then
            err "%s: edge block %s jumps to %s, original target is %s" describe
              leaf.l_label t x.x_target
          else if not needs_cc then
            err "%s: edge block %s reestablishes condition codes %d that %s \
                 does not consume"
              describe leaf.l_label c x.x_target
          else check_cc (Some (c, swapped))
        | rest, kind -> (
          (* tail duplication of the target block — either its original
             body, or its current body when an earlier sequence of the
             same pass already rewrote the target (that rewrite is
             certified on its own) *)
          let faithful (tb : Mir.Block.t) =
            same_insns rest tb.Mir.Block.insns
            && Mir.Block.equal_term_kind kind tb.Mir.Block.term.kind
            && tb.Mir.Block.term.delay = None
          in
          let candidates =
            List.filter_map
              (fun fn -> Mir.Func.find_block_opt fn x.x_target)
              [ fn_before; fn_after ]
          in
          match candidates with
          | [] ->
            err "%s: edge block %s carries extra instructions and target %s is \
                 not an original block"
              describe leaf.l_label x.x_target
          | _ ->
            if not (List.exists faithful candidates) then
              err "%s: edge block %s is not a faithful copy of target %s"
                describe leaf.l_label x.x_target
            else if needs_cc then
              err "%s: tail-duplicated target %s consumes condition codes"
                describe x.x_target))))

let certify_reordered ~fn_before ~fn_after (seq : Detect.t)
    (applied : Reorder.Apply.applied) =
  let errors = ref [] in
  let add_err m = errors := !errors @ [ m ] in
  let err fmt = Format.kasprintf add_err fmt in
  let pieces = ref 0 in
  let ccl = Analysis.Cc_live.analyze fn_before in
  let items_arr = Array.of_list seq.Detect.items in
  let var = seq.Detect.var in
  (* explicit ranges must still be nonoverlapping (detection promised it;
     re-check so the partition below is well defined) *)
  let rec overlap_check = function
    | [] -> ()
    | r :: rest ->
      if not (Range.nonoverlapping r rest) then
        err "original ranges overlap at %s" (Range.show r);
      overlap_check rest
  in
  overlap_check (Detect.explicit_ranges seq);
  (* head surgery: leading instructions kept, trailing compare stripped,
     unconditional jump into the replica *)
  (match
     ( Mir.Func.find_block_opt fn_before seq.Detect.head,
       Mir.Func.find_block_opt fn_after seq.Detect.head )
   with
  | Some hb, Some ha -> (
    (match remove_last_cmp hb.Mir.Block.insns with
    | Some kept ->
      if not (same_insns ha.Mir.Block.insns kept) then
        err "head %s changed beyond dropping its compare" seq.Detect.head
    | None -> err "original head %s has no compare" seq.Detect.head);
    match ha.Mir.Block.term.kind with
    | Mir.Block.Jmp t when t = applied.Reorder.Apply.replica_entry ->
      if ha.Mir.Block.term.delay <> None then
        err "head %s has a filled delay slot" seq.Detect.head
    | _ -> err "head %s does not jump to the replica entry" seq.Detect.head)
  | _ -> err "head %s missing" seq.Detect.head);
  (* interpret the chain *)
  let leaves, visited_chain, walk_errors =
    walk_chain ~fn_before ~fn_after ~var
      ~entry:applied.Reorder.Apply.replica_entry
  in
  List.iter (fun e -> err "%s" e) walk_errors;
  (* the leaves partition the full line by construction; check each piece
     against the original partition *)
  let covered = ref [] in
  List.iter
    (fun leaf ->
      covered := Iset.norm (leaf.l_values @ !covered);
      let remaining = ref leaf.l_values in
      Array.iteri
        (fun pos item ->
          let piece = Iset.inter leaf.l_values (Iset.of_range item.Detect.range) in
          if not (Iset.is_empty piece) then begin
            incr pieces;
            remaining := Iset.diff !remaining piece;
            check_edge ~ccl ~fn_before ~fn_after ~var leaf piece
              (item_expectation items_arr pos)
              add_err
          end)
        items_arr;
      if not (Iset.is_empty !remaining) then begin
        incr pieces;
        check_edge ~ccl ~fn_before ~fn_after ~var leaf !remaining
          (default_expectation seq items_arr)
          add_err
      end)
    leaves;
  if walk_errors = [] && !covered <> Iset.full then
    err "replica chain does not cover the full integer line";
  (* dominator sanity: the only way into the spliced chain is the head *)
  if walk_errors = [] then begin
    let dom = Analysis.Dom.compute fn_after in
    List.iter
      (fun label ->
        if
          not
            (Analysis.Dom.dominates dom applied.Reorder.Apply.replica_entry
               label)
        then err "chain block %s is reachable around the replica entry" label)
      visited_chain
  end;
  (!pieces, !errors)

(* ------------------------------------------------------------------ *)
(* Certifying one coalesced sequence                                    *)
(* ------------------------------------------------------------------ *)

let original_target_of (seq : Detect.t) v =
  match
    List.find_opt (fun it -> Range.mem v it.Detect.range) seq.Detect.items
  with
  | Some it -> it.Detect.target
  | None -> seq.Detect.default_target

let certify_coalesced ~fn_before ~fn_after (seq : Detect.t)
    (plan : Reorder.Coalesce.plan) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := !errors @ [ m ]) fmt in
  let pieces = ref 0 in
  let items_arr = Array.of_list seq.Detect.items in
  (* coalescing is only sound without intervening side effects *)
  Array.iteri
    (fun pos item ->
      if pos > 0 && item.Detect.sides <> [] then
        err "coalesced sequence has side effects before item %d" (pos + 1))
    items_arr;
  let var = seq.Detect.var in
  let default = seq.Detect.default_target in
  let ccl = Analysis.Cc_live.analyze fn_before in
  if cc_needing ccl default then
    err "coalesced default target %s consumes condition codes" default;
  (match
     ( Mir.Func.find_block_opt fn_before seq.Detect.head,
       Mir.Func.find_block_opt fn_after seq.Detect.head )
   with
  | Some hb, Some ha -> (
    let orig_lead =
      match remove_last_cmp hb.Mir.Block.insns with
      | Some kept -> kept
      | None -> hb.Mir.Block.insns
    in
    let expect =
      orig_lead
      @ [ Mir.Insn.Cmp (Mir.Operand.Reg var, Mir.Operand.Imm plan.table_lo) ]
    in
    if not (same_insns ha.Mir.Block.insns expect) then
      err "coalesced head %s does not end in the low bounds check"
        seq.Detect.head;
    match ha.Mir.Block.term.kind with
    | Mir.Block.Br (Mir.Cond.Lt, low_t, hi_label) -> (
      if low_t <> default then
        err "below-table values reach %s, original default is %s" low_t default;
      incr pieces;
      match Mir.Func.find_block_opt fn_after hi_label with
      | None -> err "high bounds check %s missing" hi_label
      | Some hib -> (
        (if
           not
             (same_insns hib.Mir.Block.insns
                [
                  Mir.Insn.Cmp
                    (Mir.Operand.Reg var, Mir.Operand.Imm plan.table_hi);
                ])
         then err "high bounds check %s malformed" hi_label);
        match hib.Mir.Block.term.kind with
        | Mir.Block.Br (Mir.Cond.Gt, hi_t, jump_label) -> (
          if hi_t <> default then
            err "above-table values reach %s, original default is %s" hi_t
              default;
          incr pieces;
          match Mir.Func.find_block_opt fn_after jump_label with
          | None -> err "jump block %s missing" jump_label
          | Some jb -> (
            (match jb.Mir.Block.insns with
            | [
             Mir.Insn.Binop
               (Mir.Insn.Sub, _, Mir.Operand.Reg r, Mir.Operand.Imm lo);
            ]
              when Mir.Reg.equal r var && lo = plan.table_lo ->
              ()
            | _ -> err "jump block %s does not rebase the index" jump_label);
            match jb.Mir.Block.term.kind with
            | Mir.Block.Jtab (_, tid) ->
              let table =
                try Some (Mir.Func.jtab fn_after tid) with _ -> None
              in
              (match table with
              | None -> err "jump table %d missing" tid
              | Some table ->
                let span = plan.table_hi - plan.table_lo + 1 in
                if Array.length table <> span then
                  err "jump table covers %d values, span is %d"
                    (Array.length table) span
                else
                  for v = plan.table_lo to plan.table_hi do
                    incr pieces;
                    let got = table.(v - plan.table_lo) in
                    let want = original_target_of seq v in
                    if got <> want then
                      err "value %d jumps to %s, original program reaches %s" v
                        got want
                  done)
            | _ -> err "jump block %s does not end in an indirect jump" jump_label))
        | _ -> err "high bounds check %s does not branch on Gt" hi_label))
    | _ -> err "coalesced head %s does not branch on Lt" seq.Detect.head)
  | _ -> err "head %s missing" seq.Detect.head);
  (* every original range must be inside the table (nothing silently lost) *)
  List.iter
    (fun it ->
      if
        Range.lo it.Detect.range < plan.table_lo
        || Range.hi it.Detect.range > plan.table_hi
      then
        err "range %s of target %s escapes the table bounds"
          (Range.show it.Detect.range) it.Detect.target)
    seq.Detect.items;
  (!pieces, !errors)

(* ------------------------------------------------------------------ *)
(* Whole-report certification                                           *)
(* ------------------------------------------------------------------ *)

let block_equal (a : Mir.Block.t) (b : Mir.Block.t) =
  same_insns a.Mir.Block.insns b.Mir.Block.insns
  && Mir.Block.equal_term_kind a.Mir.Block.term.kind b.Mir.Block.term.kind
  && a.Mir.Block.term.delay = b.Mir.Block.term.delay
  && a.Mir.Block.term.annul = b.Mir.Block.term.annul

let unchanged_blocks_errors ~(before : Mir.Program.t) ~(after : Mir.Program.t)
    (report : Pass.report) =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun m -> errors := !errors @ [ m ]) fmt in
  (* heads the pass legitimately rewrote *)
  let touched = Hashtbl.create 16 in
  List.iter
    (fun (sr : Pass.seq_report) ->
      match sr.Pass.sr_outcome with
      | Pass.Reordered _ | Pass.Coalesced _ ->
        Hashtbl.replace touched
          (sr.Pass.sr_seq.Detect.func_name, sr.Pass.sr_seq.Detect.head)
          ()
      | Pass.Unchanged _ -> ())
    report.Pass.seq_reports;
  if List.length before.Mir.Program.funcs <> List.length after.Mir.Program.funcs
  then err "function count changed";
  if before.Mir.Program.globals <> after.Mir.Program.globals then
    err "globals changed";
  List.iter
    (fun (fb : Mir.Func.t) ->
      match Mir.Program.find_func_opt after fb.Mir.Func.name with
      | None -> err "function %s disappeared" fb.Mir.Func.name
      | Some fa ->
        (* the pass only appends jump tables *)
        let nb = List.length fb.Mir.Func.jtables in
        if
          List.length fa.Mir.Func.jtables < nb
          || List.filteri (fun i _ -> i < nb) fa.Mir.Func.jtables
             <> fb.Mir.Func.jtables
        then err "%s: original jump tables changed" fb.Mir.Func.name;
        List.iter
          (fun (bb : Mir.Block.t) ->
            let label = bb.Mir.Block.label in
            if not (Hashtbl.mem touched (fb.Mir.Func.name, label)) then
              match Mir.Func.find_block_opt fa label with
              | None -> err "%s: block %s disappeared" fb.Mir.Func.name label
              | Some ba ->
                if not (block_equal bb ba) then
                  err "%s: block %s was modified outside any sequence"
                    fb.Mir.Func.name label)
          fb.Mir.Func.blocks)
    before.Mir.Program.funcs;
  !errors

let certify_report ?(allow_switch = true) ~(before : Mir.Program.t)
    ~(after : Mir.Program.t) (report : Pass.report) =
  let global_errors = ref [] in
  (match Mir.Validate.program ~allow_switch after with
  | Ok () -> ()
  | Error msgs ->
    global_errors :=
      !global_errors @ List.map (fun m -> "after-validation: " ^ m) msgs);
  global_errors := !global_errors @ unchanged_blocks_errors ~before ~after report;
  let seq_results =
    List.map
      (fun (sr : Pass.seq_report) ->
        let seq = sr.Pass.sr_seq in
        let base kind pieces errors =
          {
            v_seq_id = seq.Detect.seq_id;
            v_func = seq.Detect.func_name;
            v_kind = kind;
            v_pieces = pieces;
            v_errors = errors;
          }
        in
        let funcs =
          match
            ( Mir.Program.find_func_opt before seq.Detect.func_name,
              Mir.Program.find_func_opt after seq.Detect.func_name )
          with
          | Some fb, Some fa -> Ok (fb, fa)
          | _ -> Error [ "enclosing function missing" ]
        in
        match (sr.Pass.sr_outcome, funcs) with
        | Pass.Unchanged _, _ -> base `Unchanged 0 []
        | _, Error e -> base `Reordered 0 e
        | Pass.Reordered applied, Ok (fn_before, fn_after) ->
          let pieces, errors =
            certify_reordered ~fn_before ~fn_after seq applied
          in
          base `Reordered pieces errors
        | Pass.Coalesced plan, Ok (fn_before, fn_after) ->
          let pieces, errors = certify_coalesced ~fn_before ~fn_after seq plan in
          base `Coalesced pieces errors)
      report.Pass.seq_reports
  in
  { seq_results; global_errors = !global_errors }
