module Detect = Reorder.Detect
module Pass = Reorder.Pass

type backend = [ `Reference | `Predecoded | `Compiled | `Native ]

type failure = {
  f_case : int;
  f_spec : Gen.spec;
  f_shrunk : Gen.spec;
  f_errors : string list;
}

type stats = {
  st_cases : int;
  st_skipped : int;
      (* cases not re-run because a resume manifest already proved them *)
  st_timeouts : int;
      (* cases abandoned by the per-case watchdog (reported, not failed) *)
  st_reordered : int;
  st_coalesced : int;
  st_unchanged : int;
  st_pieces : int;
  st_injected : int;
  st_caught : int;
  st_counterexample_blocks : int option;
  st_lint_diags : int;
      (* lint verdicts cross-checked against reference block traces *)
  st_form_counts : (string * int) list;
  st_failures : failure list;
}

let ok st = st.st_failures = []

let pp_failure ppf f =
  Format.fprintf ppf "@[<v>case %d failed:@,%a@,shrunk counterexample:@,%a@,%a@]"
    f.f_case
    (Format.pp_print_list (fun ppf e -> Format.fprintf ppf "  %s" e))
    f.f_errors Gen.pp_spec f.f_shrunk
    (fun ppf () ->
      Format.fprintf ppf "original spec:@,%a" Gen.pp_spec f.f_spec)
    ()

let pp_stats ppf st =
  Format.fprintf ppf
    "@[<v>%d cases: %d reordered, %d coalesced, %d unchanged sequences; %d \
     pieces certified@,forms: %s@,"
    st.st_cases st.st_reordered st.st_coalesced st.st_unchanged st.st_pieces
    (String.concat ", "
       (List.map (fun (f, n) -> Printf.sprintf "%s=%d" f n) st.st_form_counts));
  if st.st_skipped > 0 then
    Format.fprintf ppf "%d cases skipped (already green in resume manifest)@,"
      st.st_skipped;
  if st.st_timeouts > 0 then
    Format.fprintf ppf "%d cases timed out (watchdog)@," st.st_timeouts;
  if st.st_injected > 0 then
    Format.fprintf ppf "injected %d bugs, caught %d%s@," st.st_injected
      st.st_caught
      (match st.st_counterexample_blocks with
      | Some b -> Printf.sprintf " (smallest counterexample: %d blocks)" b
      | None -> "");
  if st.st_lint_diags > 0 then
    Format.fprintf ppf "%d lint verdicts cross-checked against traces@,"
      st.st_lint_diags;
  (match st.st_failures with
  | [] -> Format.fprintf ppf "all cases passed@,"
  | fs ->
    Format.fprintf ppf "%d FAILURES@," (List.length fs);
    List.iter (fun f -> Format.fprintf ppf "%a@," pp_failure f) fs);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* One case through the pipeline                                        *)
(* ------------------------------------------------------------------ *)

(* [Check] cannot depend on [Driver] (the pipeline itself grows a
   [~verify] option built on this library), so the fuzzer assembles the
   same stages directly at the MIR level. *)

let build spec =
  let p = Gen.to_program spec in
  Mir.Validate.check ~allow_switch:true p;
  Mopt.Switch_lower.lower_program (Gen.heuristic_of_spec spec) p;
  Mopt.Cleanup.run p;
  Mir.Validate.check p;
  p

(* alternate the coalescing decision so the verifier's jump-table path is
   exercised too *)
let case_coalesce case = case mod 2 = 1
let case_facts case = case mod 4 < 2

let coalesce_machine_for case =
  if case_coalesce case then Some Sim.Cycle_model.sparc_ipc else None

(* alternate the detector too: even cases use the interval-facts walk
   (the pipeline default), odd cases the syntactic one, so both are
   under the verifier and the backend differential *)
let transform_built ?coalesce_machine ?(config = Sim.Machine.default_config)
    ?(profile = `Trained) ~facts ~train base =
  let seqs = Detect.find_program ~facts base in
  let table =
    match profile with
    | `Static ->
      (* profile-free mode: counts synthesized from the CFG alone, no
         training run at all *)
      Reorder.Profiles.of_static base seqs
    | `Trained ->
      let train_prog = Mir.Clone.program base in
      let table = Reorder.Profiles.instrument train_prog seqs in
      let (_ : Sim.Machine.result) =
        Sim.Machine.run ~config ~profile:table train_prog ~input:train
      in
      table
  in
  let reord = Mir.Clone.program base in
  let report = Pass.run ?coalesce_machine reord seqs table in
  (base, reord, report)

let transform ?coalesce_machine ?config ?profile ~facts spec =
  transform_built ?coalesce_machine ?config ?profile ~facts
    ~train:spec.Gen.sp_train (build spec)

(* ------------------------------------------------------------------ *)
(* Bug injection: wrong default target                                  *)
(* ------------------------------------------------------------------ *)

(* retarget a {b live} exit edge of some replica chain (one whose
   abstract value set is nonempty — a dead edge can point anywhere
   without changing semantics, which would make the run vacuous) at a
   returning block that is not any of the sequence's targets.
   [Mir.Validate] stays green, so only the verifier can object.  When
   every returning block of the original function is a target of the
   sequence, a fresh block returning a sentinel no original block
   returns is spliced in instead — it can never pass for a faithful
   tail duplicate. *)
let inject_wrong_default ~before ~after (report : Pass.report) =
  let try_seq (sr : Pass.seq_report) =
    match sr.Pass.sr_outcome with
    | Pass.Reordered applied -> (
      let seq = sr.Pass.sr_seq in
      match
        ( Mir.Program.find_func_opt before seq.Detect.func_name,
          Mir.Program.find_func_opt after seq.Detect.func_name )
      with
      | Some fb, Some fa -> (
        let edges =
          Verify.live_leaf_edges ~fn_before:fb ~fn_after:fa
            ~var:seq.Detect.var ~entry:applied.Reorder.Apply.replica_entry
        in
        match List.rev edges with
        | [] -> None
        | (chain_label, dir, succ) :: _ -> (
          match Mir.Func.find_block_opt fa chain_label with
          | None -> None
          | Some b -> (
            match b.Mir.Block.term.kind with
            | Mir.Block.Br (cond, taken, fall) ->
              let excluded =
                succ
                :: Verify.resolve fa succ
                :: seq.Detect.default_target
                :: List.map
                     (fun (it : Detect.item) -> it.Detect.target)
                     seq.Detect.items
              in
              let wrong_label =
                match
                  List.find_opt
                    (fun (bb : Mir.Block.t) ->
                      (match bb.Mir.Block.term.kind with
                      | Mir.Block.Ret _ -> true
                      | _ -> false)
                      && not (List.mem bb.Mir.Block.label excluded))
                    fb.Mir.Func.blocks
                with
                | Some bb -> bb.Mir.Block.label
                | None ->
                  (* every returning block is a target: splice in one
                     returning a value no original block returns *)
                  let sentinel =
                    1
                    + List.fold_left
                        (fun acc (bb : Mir.Block.t) ->
                          match bb.Mir.Block.term.kind with
                          | Mir.Block.Ret (Some (Mir.Operand.Imm k)) ->
                            max acc k
                          | _ -> acc)
                        0 fb.Mir.Func.blocks
                  in
                  let label = Mir.Func.fresh_label fa in
                  Mir.Func.add_block fa
                    (Mir.Block.make ~label []
                       (Mir.Block.Ret (Some (Mir.Operand.Imm sentinel))));
                  label
              in
              let kind =
                match dir with
                | `Taken -> Mir.Block.Br (cond, wrong_label, fall)
                | `Fall -> Mir.Block.Br (cond, taken, wrong_label)
              in
              b.Mir.Block.term <- Mir.Block.term kind;
              Some (seq.Detect.func_name, List.length fb.Mir.Func.blocks)
            | _ -> None)))
      | _ -> None)
    | _ -> None
  in
  List.find_map try_seq report.Pass.seq_reports

(* ------------------------------------------------------------------ *)
(* Differential execution                                               *)
(* ------------------------------------------------------------------ *)

type execution = {
  x_result : (Sim.Machine.result, string) result;  (* Error = trap message *)
  x_branches : (int * bool) list;
  x_blocks : (string * string) list;
}

let capture ?(config = Sim.Machine.default_config) backend prog ~input =
  let branches = ref [] in
  let blocks = ref [] in
  let on_branch ~site ~taken = branches := (site, taken) :: !branches in
  let on_block ~func ~label = blocks := (func, label) :: !blocks in
  let result =
    try Ok (Sim.Machine.run ~config ~backend ~on_branch ~on_block prog ~input)
    with Sim.Machine.Trap m -> Error m
  in
  { x_result = result; x_branches = List.rev !branches; x_blocks = List.rev !blocks }

let backend_name = function
  | `Reference -> "reference"
  | `Predecoded -> "predecoded"
  | `Compiled -> "compiled"
  | `Native -> "native"

(* all requested backends must agree on everything observable *)
let cross_backend_errors ?config ~what backends prog ~input =
  match backends with
  | [] | [ _ ] -> ([], [])
  | first :: rest ->
    let base = capture ?config first prog ~input in
    let errors = ref [] in
    List.iter
      (fun b ->
        let r = capture ?config b prog ~input in
        let clash field =
          errors :=
            !errors
            @ [
                Printf.sprintf "%s: %s disagrees with %s on %s" what
                  (backend_name b) (backend_name first) field;
              ]
        in
        (match (base.x_result, r.x_result) with
        | Ok a, Ok c ->
          if a.Sim.Machine.output <> c.Sim.Machine.output then clash "output";
          if a.Sim.Machine.exit_code <> c.Sim.Machine.exit_code then
            clash "exit code";
          if a.Sim.Machine.counters <> c.Sim.Machine.counters then
            clash "counters"
        | Error a, Error c -> if a <> c then clash "trap message"
        | Ok _, Error _ | Error _, Ok _ -> clash "trap behaviour");
        if base.x_branches <> r.x_branches then clash "branch events";
        if base.x_blocks <> r.x_blocks then clash "block trace")
      rest;
    ([ base ], !errors)

let differential_errors ?config backends ~orig ~reord ~input =
  let run1 prog what =
    match cross_backend_errors ?config ~what backends prog ~input with
    | [ base ], errs -> (Some base, errs)
    | _, errs -> (
      match backends with
      | [] -> (None, errs)
      | b :: _ -> (Some (capture ?config b prog ~input), errs))
  in
  let o, errs_o = run1 orig "original" in
  let r, errs_r = run1 reord "reordered" in
  let errs_pair =
    match (o, r) with
    | Some o, Some r -> (
      match (o.x_result, r.x_result) with
      | Ok a, Ok b ->
        (if a.Sim.Machine.output <> b.Sim.Machine.output then
           [
             Printf.sprintf "reordered output %S differs from original %S"
               b.Sim.Machine.output a.Sim.Machine.output;
           ]
         else [])
        @
        if a.Sim.Machine.exit_code <> b.Sim.Machine.exit_code then
          [ "reordered exit code differs from original" ]
        else []
      | Error a, Error b ->
        if a <> b then [ "reordered trap differs from original" ] else []
      | Ok _, Error m ->
        [ Printf.sprintf "reordered traps (%s), original does not" m ]
      | Error m, Ok _ ->
        [ Printf.sprintf "original traps (%s), reordered does not" m ])
    | _ -> []
  in
  errs_o @ errs_r @ errs_pair

(* ------------------------------------------------------------------ *)
(* Lint cross-check                                                     *)
(* ------------------------------------------------------------------ *)

(* The lint diagnostics claim to be {e proved} from the interval facts,
   so no execution may contradict them: a block lint calls statically
   unreachable must never appear in a reference-interpreter block trace,
   an always-taken branch must never be observed falling through (and
   symmetrically), and a subsumed arm's test must never fire.  Run on
   the untransformed program over both fuzz inputs; any contradiction is
   a lint false positive and fails the case. *)
let lint_cross_errors ?(config = Sim.Machine.default_config) prog ~inputs =
  let diags = Analysis.Lint.check_program prog in
  if diags = [] then ([], 0)
  else begin
    let sites = Sim.Machine.sites prog in
    let visited = Hashtbl.create 64 in
    let outcomes = Hashtbl.create 64 in
    List.iter
      (fun input ->
        let on_block ~func ~label = Hashtbl.replace visited (func, label) () in
        let on_branch ~site ~taken =
          let key = sites.(site) in
          let t, f =
            Option.value ~default:(false, false)
              (Hashtbl.find_opt outcomes key)
          in
          Hashtbl.replace outcomes key (t || taken, f || not taken)
        in
        try
          ignore
            (Sim.Machine.run ~config ~backend:`Reference ~on_block ~on_branch
               prog ~input)
        with Sim.Machine.Trap _ -> ()
          (* observations up to a trap still count *))
      inputs;
    let errors =
      List.filter_map
        (fun (d : Analysis.Lint.diag) ->
          let key = (d.Analysis.Lint.func, d.Analysis.Lint.label) in
          let observed = Hashtbl.find_opt outcomes key in
          let seen_taken = match observed with Some (t, _) -> t | None -> false in
          let seen_fall = match observed with Some (_, f) -> f | None -> false in
          let contradiction what =
            Some
              (Format.asprintf
                 "lint false positive: %a, but a reference run %s"
                 Analysis.Lint.pp_diag d what)
          in
          match d.Analysis.Lint.kind with
          | Analysis.Lint.Unreachable_block ->
            if Hashtbl.mem visited key then contradiction "entered the block"
            else None
          | Analysis.Lint.Branch_always_taken ->
            if seen_fall then contradiction "fell through the branch" else None
          | Analysis.Lint.Branch_never_taken | Analysis.Lint.Subsumed_arm ->
            if seen_taken then contradiction "took the branch" else None
          | Analysis.Lint.Overlapping_arms | Analysis.Lint.Not_reorderable
          | Analysis.Lint.Prediction_diverges ->
            None (* not a trace-refutable verdict *))
        diags
    in
    (errors, List.length diags)
  end

(* ------------------------------------------------------------------ *)
(* Case outcomes                                                        *)
(* ------------------------------------------------------------------ *)

type case_out = {
  co_errors : string list;
  co_reordered : int;
  co_coalesced : int;
  co_unchanged : int;
  co_pieces : int;
  co_injected : bool;
  co_caught : bool;
  co_blocks : int option;  (* inject mode: enclosing function size *)
  co_lint_diags : int;
}

let count_outcomes (report : Pass.report) =
  List.fold_left
    (fun (r, c, u) (sr : Pass.seq_report) ->
      match sr.Pass.sr_outcome with
      | Pass.Reordered _ -> (r + 1, c, u)
      | Pass.Coalesced _ -> (r, c + 1, u)
      | Pass.Unchanged _ -> (r, c, u + 1))
    (0, 0, 0) report.Pass.seq_reports

let run_case ?config ?profile ~backends ~inject ~case spec =
  try
    let base, reord, report =
      transform
        ?coalesce_machine:(coalesce_machine_for case)
        ?config ?profile ~facts:(case_facts case) spec
    in
    let injected =
      if inject then inject_wrong_default ~before:base ~after:reord report
      else None
    in
    let summary = Verify.certify_report ~before:base ~after:reord report in
    let reo, coa, unc = count_outcomes report in
    let pieces =
      List.fold_left
        (fun acc r -> acc + r.Verify.v_pieces)
        0 summary.Verify.seq_results
    in
    let out =
      {
        co_errors = [];
        co_reordered = reo;
        co_coalesced = coa;
        co_unchanged = unc;
        co_pieces = pieces;
        co_injected = injected <> None;
        co_caught = false;
        co_blocks = None;
        co_lint_diags = 0;
      }
    in
    match injected with
    | Some (_fname, blocks) ->
      if Verify.ok summary then
        {
          out with
          co_errors =
            [ "verifier accepted a program with an injected wrong default target" ];
        }
      else { out with co_caught = true; co_blocks = Some blocks }
    | None ->
      if inject then out (* nothing reordered: nothing to plant *)
      else if not (Verify.ok summary) then
        { out with co_errors = Verify.all_errors summary }
      else begin
        let lint_errors, lint_diags =
          lint_cross_errors ?config base
            ~inputs:[ spec.Gen.sp_train; spec.Gen.sp_test ]
        in
        (* finalize both versions exactly like the pipeline, then race the
           backends *)
        let orig = Mir.Clone.program base in
        ignore (Mopt.Cleanup.finalize orig);
        ignore (Mopt.Cleanup.finalize reord);
        Mir.Validate.check orig;
        Mir.Validate.check reord;
        let errors =
          differential_errors ?config backends ~orig ~reord
            ~input:spec.Gen.sp_test
        in
        { out with co_errors = lint_errors @ errors; co_lint_diags = lint_diags }
      end
  with
  | Failure m -> { co_errors = [ "exception: " ^ m ];
                   co_reordered = 0; co_coalesced = 0; co_unchanged = 0;
                   co_pieces = 0; co_injected = false; co_caught = false;
                   co_blocks = None; co_lint_diags = 0 }
  | Sim.Machine.Trap m ->
    { co_errors = [ "trap during training: " ^ m ];
      co_reordered = 0; co_coalesced = 0; co_unchanged = 0; co_pieces = 0;
      co_injected = false; co_caught = false; co_blocks = None;
      co_lint_diags = 0 }

let spec_of_case ~seed ~case = Gen.spec_of_seed ((seed * 1_000_003) + case)

let default_backends : backend list = [ `Reference; `Predecoded; `Compiled ]

(* native code generation costs an out-of-process compile per fresh
   program, far too slow for a fuzz loop's default budget; opt in via
   [~backends:(all_backends ())] (a no-op on hosts without the
   toolchain) *)
let all_backends () : backend list =
  if Sim.Native.available () then default_backends @ [ `Native ]
  else default_backends

(* ------------------------------------------------------------------ *)
(* Program-level replay (corpus repros)                                 *)
(* ------------------------------------------------------------------ *)

(* The same stages as [run_case], but starting from a parsed program
   instead of a generated spec — what [bromc bench corpus] feeds saved
   [.mir] repros through.  The program may still contain [Switch]
   terminators; it is cloned first, so the caller's copy survives. *)
let run_program ?config ?(backends = default_backends) ?(facts = true)
    ?(coalesce = false) ?profile ~heuristic ~train ~test prog =
  let empty =
    { co_errors = []; co_reordered = 0; co_coalesced = 0; co_unchanged = 0;
      co_pieces = 0; co_injected = false; co_caught = false; co_blocks = None;
      co_lint_diags = 0 }
  in
  try
    let built = Mir.Clone.program prog in
    Mir.Validate.check ~allow_switch:true built;
    Mopt.Switch_lower.lower_program heuristic built;
    Mopt.Cleanup.run built;
    Mir.Validate.check built;
    let base, reord, report =
      transform_built
        ?coalesce_machine:
          (if coalesce then Some Sim.Cycle_model.sparc_ipc else None)
        ?config ?profile ~facts ~train built
    in
    let summary = Verify.certify_report ~before:base ~after:reord report in
    let reo, coa, unc = count_outcomes report in
    let pieces =
      List.fold_left
        (fun acc r -> acc + r.Verify.v_pieces)
        0 summary.Verify.seq_results
    in
    let out =
      { empty with co_reordered = reo; co_coalesced = coa; co_unchanged = unc;
                   co_pieces = pieces }
    in
    if not (Verify.ok summary) then
      { out with co_errors = Verify.all_errors summary }
    else begin
      let lint_errors, lint_diags =
        lint_cross_errors ?config base ~inputs:[ train; test ]
      in
      let orig = Mir.Clone.program base in
      ignore (Mopt.Cleanup.finalize orig);
      ignore (Mopt.Cleanup.finalize reord);
      Mir.Validate.check orig;
      Mir.Validate.check reord;
      let errors =
        differential_errors ?config backends ~orig ~reord ~input:test
      in
      { out with co_errors = lint_errors @ errors; co_lint_diags = lint_diags }
    end
  with
  | Failure m -> { empty with co_errors = [ "exception: " ^ m ] }
  | Sim.Machine.Trap m ->
    { empty with co_errors = [ "trap during training: " ^ m ] }

(* ------------------------------------------------------------------ *)
(* The driver loop                                                      *)
(* ------------------------------------------------------------------ *)

let form_name = function
  | Gen.F_eq _ -> "eq"
  | Gen.F_ne _ -> "ne"
  | Gen.F_le _ -> "le"
  | Gen.F_ge _ -> "ge"
  | Gen.F_between _ -> "between"

let run ?(backends = default_backends) ?(inject = false) ?(log = ignore)
    ?profile ?skip ?on_case ?deadline_ms ~cases ~seed () =
  let form_tally = Hashtbl.create 8 in
  let tally spec =
    List.iter
      (fun f ->
        let k = form_name f in
        Hashtbl.replace form_tally k
          (1 + Option.value ~default:0 (Hashtbl.find_opt form_tally k)))
      (Gen.forms spec)
  in
  let failures = ref [] in
  let reordered = ref 0
  and coalesced = ref 0
  and unchanged = ref 0
  and pieces = ref 0
  and injected = ref 0
  and caught = ref 0
  and lint_diags = ref 0
  and best_blocks = ref None
  and skipped = ref 0
  and timeouts = ref 0 in
  let notify case status =
    match on_case with Some f -> f case status | None -> ()
  in
  (* one latching watchdog covers the whole case: the training run, every
     differential execution, the lint cross-check, and any shrinking *)
  let case_config () =
    match deadline_ms with
    | None -> None
    | Some ms ->
      Some
        {
          Sim.Machine.default_config with
          Sim.Machine.cancel = Some (Sim.Runtime.watchdog ~ms);
        }
  in
  let process case =
    let spec = spec_of_case ~seed ~case in
    tally spec;
    let config = case_config () in
    let out = run_case ?config ?profile ~backends ~inject ~case spec in
    reordered := !reordered + out.co_reordered;
    coalesced := !coalesced + out.co_coalesced;
    unchanged := !unchanged + out.co_unchanged;
    pieces := !pieces + out.co_pieces;
    lint_diags := !lint_diags + out.co_lint_diags;
    if out.co_injected then incr injected;
    if out.co_caught then begin
      incr caught;
      (* shrink the caught case once, for the smallest demonstration *)
      if !best_blocks = None then begin
        let keep s =
          (run_case ?config ?profile ~backends ~inject:true ~case s).co_caught
        in
        let shrunk = Gen.shrink_spec ~keep spec in
        let blocks =
          (run_case ?config ?profile ~backends ~inject:true ~case shrunk)
            .co_blocks
        in
        best_blocks := blocks
      end
    end;
    if out.co_errors <> [] then begin
      let keep s =
        (run_case ?config ?profile ~backends ~inject ~case s).co_errors <> []
      in
      let shrunk = Gen.shrink_spec ~keep spec in
      let f =
        {
          f_case = case;
          f_spec = spec;
          f_shrunk = shrunk;
          f_errors = out.co_errors;
        }
      in
      failures := !failures @ [ f ];
      log (Format.asprintf "%a" pp_failure f)
    end;
    out.co_errors <> []
  in
  for case = 0 to cases - 1 do
    (match skip with
    | Some p when p case -> incr skipped
    | _ -> (
      match process case with
      | failed -> notify case (if failed then "failed" else "ok")
      | exception Sim.Runtime.Cancelled ->
        (* the per-case watchdog fired; abandon this case (its partial
           tallies stand) and keep the corpus going *)
        incr timeouts;
        log
          (Printf.sprintf "fuzz: case %d timed out after %d ms" case
             (Option.value ~default:0 deadline_ms));
        notify case "timeout"));
    if (case + 1) mod 100 = 0 then
      log
        (Printf.sprintf "fuzz: %d/%d cases, %d sequences reordered, %d failures"
           (case + 1) cases !reordered
           (List.length !failures))
  done;
  {
    st_cases = cases;
    st_skipped = !skipped;
    st_timeouts = !timeouts;
    st_reordered = !reordered;
    st_coalesced = !coalesced;
    st_unchanged = !unchanged;
    st_pieces = !pieces;
    st_injected = !injected;
    st_caught = !caught;
    st_counterexample_blocks = !best_blocks;
    st_lint_diags = !lint_diags;
    st_form_counts =
      List.sort compare
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) form_tally []);
    st_failures = !failures;
  }
