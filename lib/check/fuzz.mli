(** Fuzzing orchestrator: generate → pipeline → verify → differential.

    Each case draws a {!Gen.spec}, builds the program, lowers switches
    under the spec's heuristic set, trains on the spec's training input,
    runs {!Reorder.Pass.run}, certifies the rewrite with {!Verify}, and
    differentially executes the original against the reordered program
    under the requested {!Sim.Machine} backends — comparing output and
    exit code between versions, and additionally counters, branch-event
    streams and block traces between backends of the same version.

    Every non-inject case also cross-checks {!Analysis.Lint} against the
    reference interpreter: diagnostics are proved from interval facts, so
    an execution contradicting one (entering an "unreachable" block,
    taking a "never taken" branch, …) is a lint false positive and fails
    the case.

    Failures are minimized with {!Gen.shrink_spec} before being
    reported.  With [inject] set, a "wrong default target" bug is
    planted into every reordered result and the roles flip: the verifier
    {b must} reject each planted bug, and a case where it does not is a
    failure — this guards against a vacuously-true verifier.  Cases
    where nothing was reordered have nothing to plant and are skipped;
    [bromc fuzz --inject] additionally fails a run where {b no} case
    could be injected (wholly vacuous). *)

type backend = [ `Reference | `Predecoded | `Compiled | `Native ]

type failure = {
  f_case : int;       (** 0-based case index *)
  f_spec : Gen.spec;  (** spec as generated *)
  f_shrunk : Gen.spec;  (** minimized spec still exhibiting the failure *)
  f_errors : string list;
}

type stats = {
  st_cases : int;
  st_skipped : int;
      (** cases not re-run because [skip] said a resume manifest already
          proved them green *)
  st_timeouts : int;
      (** cases abandoned by the per-case watchdog ([deadline_ms]);
          reported, but not counted as failures — a slow case is not a
          wrong one *)
  st_reordered : int;   (** sequences reordered across all cases *)
  st_coalesced : int;
  st_unchanged : int;
  st_pieces : int;      (** partition pieces certified by {!Verify} *)
  st_injected : int;    (** planted bugs (inject mode) *)
  st_caught : int;      (** planted bugs the verifier rejected *)
  st_counterexample_blocks : int option;
      (** inject mode: blocks of the enclosing function in the smallest
          shrunk caught case *)
  st_lint_diags : int;
      (** lint verdicts cross-checked against reference block traces: a
          statically-unreachable block appearing in a trace, or a decided
          branch observed going the other way, fails the case *)
  st_form_counts : (string * int) list;
      (** occurrences of each range-condition form across the corpus *)
  st_failures : failure list;
}

val ok : stats -> bool

val default_backends : backend list
(** [[`Reference; `Predecoded; `Compiled]]. *)

val all_backends : unit -> backend list
(** {!default_backends} plus [`Native] when {!Sim.Native.available};
    what [bromc fuzz --native] and the four-way differential tests
    use. *)

val pp_stats : Format.formatter -> stats -> unit

val pp_failure : Format.formatter -> failure -> unit
(** The shrunk counterexample, its errors, and the full spec. *)

(** {2 Single-case replay}

    The per-case machinery, exposed for the repro corpus
    ([Bench_db.Corpus]): minting a repro shrinks a spec under
    {!run_case} with a caller-chosen predicate, and replaying a saved
    [.mir] repro feeds the parsed program through {!run_program} — the
    same stages as a fuzz case, without a generator in the loop. *)

type case_out = {
  co_errors : string list;  (** empty = the case passed *)
  co_reordered : int;
  co_coalesced : int;
  co_unchanged : int;
  co_pieces : int;
  co_injected : bool;  (** inject mode: a bug was planted *)
  co_caught : bool;    (** inject mode: the verifier rejected it *)
  co_blocks : int option;
      (** inject mode: blocks of the function the bug landed in *)
  co_lint_diags : int;
}

val spec_of_case : seed:int -> case:int -> Gen.spec
(** The spec case [case] of a [run ~seed] draws — the seed arithmetic in
    one place, so repro headers can name [(seed, case)] instead of
    embedding specs. *)

val case_facts : int -> bool
val case_coalesce : int -> bool
(** The per-case detector and coalescing alternation [run] applies, so a
    replay of case [i] makes the same choices. *)

val run_case :
  ?config:Sim.Machine.config ->
  ?profile:[ `Trained | `Static ] ->
  backends:backend list ->
  inject:bool ->
  case:int ->
  Gen.spec ->
  case_out
(** One spec through build → lower → train → reorder → certify →
    (without inject) lint cross-check and backend differential.  [case]
    only selects the alternating detector and coalescing choices, so a
    shrink loop must hold it fixed.  [profile:`Static] replaces the
    training run with {!Reorder.Profiles.of_static} — every downstream
    stage (selection, apply, verify, differential) runs unchanged on the
    predicted counts. *)

val run_program :
  ?config:Sim.Machine.config ->
  ?backends:backend list ->
  ?facts:bool ->
  ?coalesce:bool ->
  ?profile:[ `Trained | `Static ] ->
  heuristic:Mopt.Switch_lower.heuristic_set ->
  train:string ->
  test:string ->
  Mir.Program.t ->
  case_out
(** Like {!run_case} but starting from a program (which may still carry
    [Switch] terminators; it is cloned, not mutated).  [facts] picks the
    interval-facts detector (default [true]), [coalesce] the SPARC IPC
    coalescing model (default [false]), [profile] the counts source
    (default [`Trained]). *)

val run :
  ?backends:backend list ->
  ?inject:bool ->
  ?log:(string -> unit) ->
  ?profile:[ `Trained | `Static ] ->
  ?skip:(int -> bool) ->
  ?on_case:(int -> string -> unit) ->
  ?deadline_ms:int ->
  cases:int ->
  seed:int ->
  unit ->
  stats
(** Deterministic in [seed]: case [i] draws from a PRNG seeded with
    [seed] and [i], so the same [(cases, seed)] always replays the same
    corpus — which is what makes checkpoint/resume sound.  [log]
    receives one progress line every few hundred cases.  [backends]
    defaults to the three interpreted/closure engines
    ({!default_backends}); native code generation compiles out of
    process per fresh program, far too slow for a fuzz loop, so
    four-way differentials are opt-in via {!all_backends}.  [profile]
    (default [`Trained]) selects the counts source for every case; with
    [`Static] the fuzzer exercises the profile-free prediction path —
    injection self-tests still apply, since the verifier must reject a
    planted bug no matter where the counts came from.

    [skip case] short-circuits a case without running it (resume from a
    checkpoint manifest); skipped cases count in [st_skipped] and do not
    reach [on_case].  [on_case case status] fires after every executed
    case with ["ok"], ["failed"] or ["timeout"] — the checkpoint hook
    ([bromc fuzz --failures-json] appends and flushes one manifest line
    per case, so a killed run resumes).  [deadline_ms] arms one latching
    {!Sim.Runtime.watchdog} per case spanning training, differential
    execution, lint cross-check and shrinking; an expired case is
    abandoned (the corpus continues) and tallied in [st_timeouts]. *)
