(** Translation validation for the reordering pass.

    Given the program {b before} and {b after} {!Reorder.Pass.run} (and
    the pass's report), independently certify every rewritten sequence —
    without re-running selection.  For a reordered sequence the replica
    chain is interpreted abstractly over sets of integer intervals: the
    walk from the replica entry splits the full integer line at every
    compare/branch, and each leaf edge must land on the target the {b
    original} sequence assigns to those values (Theorem 3's partition
    semantics), carrying exactly the side effects the original path
    would have executed by then (Theorem 2) and reestablishing the
    condition codes any compare-less target consumes.  Coalesced
    sequences are certified by enumerating the jump table against the
    original partition.  On top of the per-sequence checks, the whole
    program is re-validated ({!Mir.Validate}), every block the pass had
    no business touching is required to be instruction-for-instruction
    identical, and dominator sanity of the spliced chain is checked with
    {!Mir.Dom}.

    What this certifies: the range → target partition, duplicated side
    effects, condition-code reestablishment, default-target complement
    semantics, and CFG well-formedness.  What it does {b not} certify:
    that the chosen order is profitable (that is selection's job, tested
    separately) and the behaviour of code outside detected sequences
    (covered by differential execution in {!Fuzz}). *)

type seq_result = {
  v_seq_id : int;
  v_func : string;
  v_kind : [ `Reordered | `Coalesced | `Unchanged ];
  v_pieces : int;
      (** partition pieces certified (leaf edge x original range) *)
  v_errors : string list;  (** empty = certified *)
}

type summary = {
  seq_results : seq_result list;
  global_errors : string list;
      (** structural problems: blocks modified outside any sequence,
          validation or dominator failures, missing functions *)
}

val ok : summary -> bool

val all_errors : summary -> string list
(** Every error, prefixed with its sequence (or "program"). *)

val certify_report :
  ?allow_switch:bool ->
  before:Mir.Program.t ->
  after:Mir.Program.t ->
  Reorder.Pass.report ->
  summary
(** [before] must be the pre-pass program (the pass mutates in place, so
    callers clone first — as the pipeline already does), [after] the
    program {!Reorder.Pass.run} transformed, {b before} any later
    cleanup reshapes the blocks. *)

val pp_summary : Format.formatter -> summary -> unit

(** {2 Chain introspection}

    Exposed for {!Fuzz}'s bug-injection mode, which must plant its bug on
    an edge the program can actually take: a chain edge whose abstract
    value set is empty is dead, and retargeting it is semantically
    invisible — the verifier would rightly accept it and the injection
    run would be vacuous. *)

val live_leaf_edges :
  fn_before:Mir.Func.t ->
  fn_after:Mir.Func.t ->
  var:Mir.Reg.t ->
  entry:string ->
  (string * [ `Taken | `Fall ] * string) list
(** All [(chain_block, direction, successor)] edges of the replica chain
    rooted at [entry] that carry a nonempty value set and leave the
    chain (the successor is not itself a chain block), in discovery
    order.  Empty if the chain is malformed. *)

val resolve : Mir.Func.t -> string -> string
(** Follow empty forwarding blocks ([Jmp]-only, no delay slot, no
    instructions) to the label a jump really lands on. *)
