(* Native execution backend: runtime OCaml code generation.

   {!generate} emits an {!Image.t} as a self-contained OCaml module
   that depends on the standard library only: each MIR function becomes
   one OCaml function whose basic blocks are mutually tail-recursive
   inner functions, registers are [let]-bound [ref] cells, and the
   charge batching of {!Compiled} is replayed at code-generation time —
   pure instructions run straight-line and their counter/fuel charges
   are flushed, already folded into constants, before every observable
   point (trapping instructions, I/O, profile recordings, every
   terminator), so the fuel trap fires under exactly the same
   conditions and with the same message as the other backends and the
   ten counters are exact at every exit.

   The module is compiled out of process with [ocamlfind ocamlopt
   -shared] and loaded with [Dynlink.loadfile_private].  The plugin and
   the host rendezvous without sharing any compiled interface: the
   plugin's last toplevel definition raises a [Handoff] exception
   carrying its entry closure, which [Dynlink] hands back wrapped in
   [Library's_module_initializers_failed]; the host fishes the closure
   out and calls it with a [ctx] record of host-owned state and
   callbacks (memory, counters, output buffer, trap/cancel raisers,
   branch-event sink, profile hooks).  The record type is declared
   field-for-field identically on both sides ({!ctx} below and the
   [ctx_decl] string), which makes the cast safe; the declaration is
   part of the generated source and therefore of the content hash, so a
   plugin built against an older schema can never be loaded.

   Branch events under [Sink_bank] are not delivered one closure call
   at a time: the generated code appends [(site lsl 1) lor taken] to an
   event buffer at each branch terminator and folds full buffers into
   the predictor bank with {!Predictor.bank_drain}, which sweeps one
   predictor at a time over the batch.  Each predictor still folds its
   event stream in order, so the final tables, lookup and mispredict
   counts are byte-identical to streaming delivery — this is where most
   of the backend's measure-loop speedup comes from, because the
   per-event bank sweep dominates once interpretation overhead is gone.

   Artifacts are cached on disk under one subdirectory per
   compiler/ABI fingerprint, one [.cmxs] per content hash of the
   generated source; loaded entry points are additionally memoized in
   process.  Every failure mode of the toolchain (no ocamlfind, the
   compile fails, the artifact will not load) surfaces as [Error] /
   {!Unavailable}, never as a crash, so callers can degrade to the
   closure backend. *)

open Runtime

exception Unavailable of string

(* raised internally when an image contains a shape the generator does
   not support (none are produced by {!Image.build}) *)
exception Unsupported of string

let schema_version = 1

(* ------------------------------------------------------------------ *)
(* Process-wide configuration and statistics                           *)
(* ------------------------------------------------------------------ *)

let enabled_flag = ref (Sys.getenv_opt "BROMC_NO_NATIVE" = None)
let set_enabled b = enabled_flag := b
let enabled () = !enabled_flag

let default_cache_dir_override = ref (None : string option)
let set_default_cache_dir d = default_cache_dir_override := d
let default_use_cache = ref true
let set_default_use_cache b = default_use_cache := b

type stats = {
  memo_hits : int;
  disk_hits : int;
  misses : int;
  compiles : int;
  memo_evictions : int;
  memo_entries : int;
  memo_capacity : int;
  quarantined : int;
}

let s_memo_hits = ref 0
let s_disk_hits = ref 0
let s_misses = ref 0
let s_compiles = ref 0
let s_memo_evictions = ref 0
let s_quarantined = ref 0

let reset_stats () =
  s_memo_hits := 0;
  s_disk_hits := 0;
  s_misses := 0;
  s_compiles := 0;
  s_memo_evictions := 0;
  s_quarantined := 0

(* ------------------------------------------------------------------ *)
(* The host side of the plugin interface                               *)
(* ------------------------------------------------------------------ *)

(* MUST match [ctx_decl] below field for field: the plugin declares a
   structurally identical record, and the handoff cast relies on the
   layouts agreeing.  Bump [schema_version] on any change. *)
type ctx = {
  x_mem : int array array;
  x_input : string;
  x_fuel : int;
  x_max_depth : int;
  x_counters : int array;  (* the ten counters, see [counter_ix] *)
  x_out : Buffer.t;
  x_trap : string -> int;  (* raises Trap; never returns *)
  x_cancelled : unit -> int;  (* raises Cancelled; never returns *)
  x_poll : unit -> bool;
  x_use_poll : bool;
  x_sink_mode : int;  (* 0 none, 1 streaming closure, 2 buffered bank *)
  x_sink_fun : int -> bool -> unit;
  x_ebuf : int array;
  x_drain : int array -> int -> unit;
  x_on_block : string -> string -> unit;
  x_use_on_block : bool;
  x_range : int -> int -> unit;
  x_comb : int -> (int -> int) -> unit;
  x_use_profile : bool;
  x_raise : int -> int;  (* raises a decode-time exn; never returns *)
}

let ctx_decl =
  "type ctx = {\n\
  \  x_mem : int array array;\n\
  \  x_input : string;\n\
  \  x_fuel : int;\n\
  \  x_max_depth : int;\n\
  \  x_counters : int array;\n\
  \  x_out : Buffer.t;\n\
  \  x_trap : string -> int;\n\
  \  x_cancelled : unit -> int;\n\
  \  x_poll : unit -> bool;\n\
  \  x_use_poll : bool;\n\
  \  x_sink_mode : int;\n\
  \  x_sink_fun : int -> bool -> unit;\n\
  \  x_ebuf : int array;\n\
  \  x_drain : int array -> int -> unit;\n\
  \  x_on_block : string -> string -> unit;\n\
  \  x_use_on_block : bool;\n\
  \  x_range : int -> int -> unit;\n\
  \  x_comb : int -> (int -> int) -> unit;\n\
  \  x_use_profile : bool;\n\
  \  x_raise : int -> int;\n\
   }\n"

(* counter slots in [x_counters]; mirrors {!Counters.t} *)
let ix_insns = 0
and ix_cond = 1
and ix_taken = 2
and ix_jumps = 3
and ix_indirect = 4
and ix_calls = 5
and ix_returns = 6
and ix_loads = 7
and ix_stores = 8
and ix_nops = 9

(* ------------------------------------------------------------------ *)
(* Code generation                                                     *)
(* ------------------------------------------------------------------ *)

let cond_op : Mir.Cond.t -> string = function
  | Mir.Cond.Eq -> "="
  | Mir.Cond.Ne -> "<>"
  | Mir.Cond.Lt -> "<"
  | Mir.Cond.Le -> "<="
  | Mir.Cond.Gt -> ">"
  | Mir.Cond.Ge -> ">="

(* how an instruction participates in charge batching; mirrors
   {!Compiled.comp} *)
type ikind =
  | Knop
  | Kpure
  | Keff
  | Kobs

let classify (i : Image.pinsn) : ikind =
  match i with
  | Image.Pnop -> Knop
  | Image.Pmov _ | Image.Punop _ | Image.Pcmp _ -> Kpure
  | Image.Pbinop ((Mir.Insn.Div | Mir.Insn.Rem), _, _, b) -> (
    match b with
    | Image.Pimm 0 -> Keff  (* traps *)
    | Image.Pimm _ -> Kpure
    | Image.Preg _ -> Keff)
  | Image.Pbinop _ -> Kpure
  | Image.Pload _ | Image.Pstore _ | Image.Pcall _ | Image.Pbuiltin _ -> Keff
  | Image.Pprofile_range _ | Image.Pprofile_comb _ | Image.Ptrap_insn _ -> Kobs

let generate (img : Image.t) : string * exn array =
  let b = Buffer.create 16384 in
  let pf fmt = Printf.bprintf b fmt in
  let raises = ref [] in
  let nraises = ref 0 in
  let raise_slot e =
    let k = !nraises in
    raises := e :: !raises;
    incr nraises;
    k
  in
  let funcs = img.Image.funcs in
  let globals = img.Image.globals in

  (* operand printer, relative to the current function's registers *)
  let pop = function
    | Image.Preg r -> Printf.sprintf "!r%d" r
    | Image.Pimm n -> Printf.sprintf "(%d)" n
  in

  (* the operational code of one instruction, without any charging; the
     caller has already emitted the flush required by its kind *)
  let gen_insn ind (i : Image.pinsn) =
    let p fmt = Printf.bprintf b fmt in
    let line fmt =
      Buffer.add_string b ind;
      Printf.bprintf b fmt
    in
    match i with
    | Image.Pnop -> ()
    | Image.Pmov (r, o) -> line "r%d := %s;\n" r (pop o)
    | Image.Punop (Mir.Insn.Neg, r, o) -> line "r%d := - %s;\n" r (pop o)
    | Image.Punop (Mir.Insn.Not, r, o) ->
      line "r%d := (if %s = 0 then 1 else 0);\n" r (pop o)
    | Image.Pbinop (op, r, x, y) -> (
      let open Mir.Insn in
      match (op, x, y) with
      | (Div | Rem), _, Image.Pimm 0 ->
        line "ignore (trap \"division by zero\");\n"
      | Div, _, Image.Pimm n -> line "r%d := %s / (%d);\n" r (pop x) n
      | Rem, _, Image.Pimm n -> line "r%d := %s mod (%d);\n" r (pop x) n
      | (Div | Rem), _, Image.Preg y ->
        line "let d = !r%d in\n" y;
        line "if d = 0 then ignore (trap \"division by zero\");\n";
        line "r%d := %s %s d;\n" r (pop x)
          (if op = Div then "/" else "mod")
      | _, Image.Pimm vx, Image.Pimm vy ->
        (* constant folded at code-generation time, like {!Compiled} *)
        line "r%d := (%d);\n" r (eval_binop op vx vy)
      | Shl, _, Image.Pimm n -> line "r%d := %s lsl %d;\n" r (pop x) (n land 63)
      | Shr, _, Image.Pimm n -> line "r%d := %s asr %d;\n" r (pop x) (n land 63)
      | Shl, _, _ -> line "r%d := %s lsl (%s land 63);\n" r (pop x) (pop y)
      | Shr, _, _ -> line "r%d := %s asr (%s land 63);\n" r (pop x) (pop y)
      | Add, _, _ -> line "r%d := %s + %s;\n" r (pop x) (pop y)
      | Sub, _, _ -> line "r%d := %s - %s;\n" r (pop x) (pop y)
      | Mul, _, _ -> line "r%d := %s * %s;\n" r (pop x) (pop y)
      | And, _, _ -> line "r%d := %s land %s;\n" r (pop x) (pop y)
      | Or, _, _ -> line "r%d := %s lor %s;\n" r (pop x) (pop y)
      | Xor, _, _ -> line "r%d := %s lxor %s;\n" r (pop x) (pop y))
    | Image.Pcmp (x, y) ->
      line "cc_a := %s;\n" (pop x);
      line "cc_b := %s;\n" (pop y)
    | Image.Pload (r, slot, idx) ->
      let name = globals.(slot).Image.g_name in
      line "bump %d;\n" ix_loads;
      line "let i = %s in\n" (pop idx);
      line "if i < 0 || i >= Array.length g%d then oob %S i (Array.length g%d);\n"
        slot name slot;
      line "r%d := Array.unsafe_get g%d i;\n" r slot
    | Image.Pstore (slot, idx, v) ->
      let name = globals.(slot).Image.g_name in
      line "bump %d;\n" ix_stores;
      line "let i = %s in\n" (pop idx);
      line "if i < 0 || i >= Array.length g%d then oob %S i (Array.length g%d);\n"
        slot name slot;
      line "Array.unsafe_set g%d i %s;\n" slot (pop v)
    | Image.Pcall (dst, fid, args) ->
      let callee = funcs.(fid) in
      let nparams = Array.length callee.Image.pf_params in
      line "bump %d;\n" ix_calls;
      if Array.length args < nparams then begin
        line "if !depth + 1 >= max_depth then ignore (trap %S);\n"
          ("call depth exceeded in " ^ callee.Image.pf_name);
        line "ignore (trap %S);\n"
          ("too few arguments to " ^ callee.Image.pf_name)
      end
      else begin
        line "let d = !depth + 1 in\n";
        line "if d >= max_depth then ignore (trap %S);\n"
          ("call depth exceeded in " ^ callee.Image.pf_name);
        line "depth := d;\n";
        Buffer.add_string b ind;
        p "let v = f_%d" fid;
        if nparams = 0 then p " ()"
        else
          for i = 0 to nparams - 1 do
            p " %s" (pop args.(i))
          done;
        p " in\n";
        line "depth := d - 1;\n";
        if dst >= 0 then line "r%d := v;\n" dst else line "ignore v;\n"
      end
    | Image.Pbuiltin (dst, bi, args) -> (
      line "bump %d;\n" ix_calls;
      match bi with
      | Image.Bgetchar ->
        if dst >= 0 then line "r%d := getch ();\n" dst
        else line "if !pos < ilen then incr pos;\n"
      | Image.Bputchar ->
        if dst >= 0 then begin
          line "let v = %s in\n" (pop args.(0));
          line "Buffer.add_char out (Char.chr (v land 255));\n";
          line "r%d := v;\n" dst
        end
        else
          line "Buffer.add_char out (Char.chr (%s land 255));\n" (pop args.(0))
      | Image.Bprint_int ->
        line "Buffer.add_string out (string_of_int %s);\n" (pop args.(0));
        if dst >= 0 then line "r%d := 0;\n" dst
      | Image.Bexit -> line "raise (Exitp %s);\n" (pop args.(0)))
    | Image.Pprofile_range (id, r) ->
      line "if uprof then prange %d !r%d;\n" id r
    | Image.Pprofile_comb id -> line "if uprof then pcomb %d rdr;\n" id
    | Image.Ptrap_insn msg -> line "ignore (trap %S);\n" msg
  in

  (* pending charge flush: [pi] instructions of which [pn] are nops *)
  let gen_flush ind pi pn =
    if pn = 0 then begin
      if pi > 0 then pf "%sch %d;\n" ind pi
    end
    else pf "%sfl %d %d;\n" ind pi pn
  in

  (* a delay-slot instruction executed standalone pays its own charge *)
  let gen_delay ind (i : Image.pinsn option) =
    match i with
    | None -> pf "%snp ();\n" ind
    | Some i -> (
      match classify i with
      | Knop -> pf "%snp ();\n" ind
      | Kpure | Keff ->
        pf "%sch 1;\n" ind;
        gen_insn ind i
      | Kobs -> gen_insn ind i)
  in

  let gen_func fid (f : Image.pfunc) =
    let unknowns = f.Image.pf_unknown in
    let nparams = Array.length f.Image.pf_params in
    let has_comb =
      Array.exists
        (fun (blk : Image.pblock) ->
          let is_comb = function Image.Pprofile_comb _ -> true | _ -> false in
          Array.exists is_comb blk.Image.pb_insns
          || match blk.Image.pb_delay with
             | Some i -> is_comb i
             | None -> false)
        f.Image.pf_blocks
    in
    (* registers to materialize: everything the code touches, or the
       whole file when a comb reader needs dynamic access *)
    let used = Array.make (max f.Image.pf_nregs 1) has_comb in
    let mark r = if r >= 0 && r < Array.length used then used.(r) <- true in
    let mark_op = function Image.Preg r -> mark r | Image.Pimm _ -> () in
    Array.iter mark f.Image.pf_params;
    let mark_insn (i : Image.pinsn) =
      match i with
      | Image.Pnop -> ()
      | Image.Pmov (r, o) | Image.Punop (_, r, o) ->
        mark r;
        mark_op o
      | Image.Pbinop (_, r, x, y) ->
        mark r;
        mark_op x;
        mark_op y
      | Image.Pcmp (x, y) ->
        mark_op x;
        mark_op y
      | Image.Pload (r, _, ix) ->
        mark r;
        mark_op ix
      | Image.Pstore (_, ix, v) ->
        mark_op ix;
        mark_op v
      | Image.Pcall (dst, _, args) ->
        mark dst;
        Array.iter mark_op args
      | Image.Pbuiltin (dst, _, args) ->
        mark dst;
        Array.iter mark_op args
      | Image.Pprofile_range (_, r) -> mark r
      | Image.Pprofile_comb _ -> ()
      | Image.Ptrap_insn _ -> ()
    in
    Array.iter
      (fun (blk : Image.pblock) ->
        Array.iter mark_insn blk.Image.pb_insns;
        (match blk.Image.pb_delay with Some i -> mark_insn i | None -> ());
        match blk.Image.pb_term with
        | Image.Pjtab (r, _) -> mark r
        | Image.Pret (Some (Image.Preg r)) -> mark r
        | _ -> ())
      f.Image.pf_blocks;
    (* which parameter (by position) initializes each register; the last
       binding wins, matching the compiled backend's bind loop *)
    let param_of = Hashtbl.create 8 in
    Array.iteri
      (fun i slot -> Hashtbl.replace param_of slot i)
      f.Image.pf_params;
    pf "  %s f_%d" (if fid = 0 then "let rec" else "and") fid;
    if nparams = 0 then pf " ()"
    else
      for i = 0 to nparams - 1 do
        pf " a%d" i
      done;
    pf " : int =\n";
    if Array.length f.Image.pf_blocks = 0 then
      (* the same failure as [run_blocks] indexing an empty array *)
      pf "    raise (Invalid_argument \"index out of bounds\")\n"
    else begin
      Array.iteri
        (fun r u ->
          if u && r < f.Image.pf_nregs then
            match Hashtbl.find_opt param_of r with
            | Some i -> pf "    let r%d = ref a%d in\n" r i
            | None -> pf "    let r%d = ref 0 in\n" r)
        used;
      if has_comb then begin
        pf "    let rdr i = match i with\n";
        for r = 0 to f.Image.pf_nregs - 1 do
          pf "      | %d -> !r%d\n" r r
        done;
        pf "      | _ -> raise (Invalid_argument \"index out of bounds\")\n";
        pf "    in\n"
      end;
      let target t =
        if t >= 0 then Printf.sprintf "b_%d ()" t
        else
          Printf.sprintf "trap %S"
            ("jump to unknown label " ^ unknowns.(-t - 1))
      in
      Array.iteri
        (fun bix (blk : Image.pblock) ->
          pf "    %s b_%d () : int =\n"
            (if bix = 0 then "let rec" else "and")
            bix;
          pf "      if upoll && poll () then ignore (cancelled ());\n";
          pf "      if ublock then on_block %S %S;\n" f.Image.pf_name
            blk.Image.pb_label;
          let ind = "      " in
          let pi = ref 0 and pn = ref 0 in
          Array.iter
            (fun i ->
              match classify i with
              | Knop ->
                incr pi;
                incr pn
              | Kpure ->
                incr pi;
                gen_insn ind i
              | Keff ->
                gen_flush ind (!pi + 1) !pn;
                pi := 0;
                pn := 0;
                gen_insn ind i
              | Kobs ->
                gen_flush ind !pi !pn;
                pi := 0;
                pn := 0;
                gen_insn ind i)
            blk.Image.pb_insns;
          let site = blk.Image.pb_site in
          (match blk.Image.pb_term with
          | Image.Pbr (cond, t, nt, nt_falls) ->
            gen_flush ind (!pi + 1) !pn;
            pf "      bump %d;\n" ix_cond;
            pf "      if !cc_a %s !cc_b then begin\n" (cond_op cond);
            pf "        bump %d;\n" ix_taken;
            pf "        snk %d true;\n" site;
            let d_taken, d_not_taken =
              if blk.Image.pb_annul then
                match blk.Image.pb_delay with
                | Some _ -> (blk.Image.pb_delay, `Skip)
                | None -> (None, `Nop)
              else (blk.Image.pb_delay, `Run)
            in
            gen_delay "        " d_taken;
            pf "        %s\n" (target t);
            pf "      end\n";
            pf "      else begin\n";
            pf "        snk %d false;\n" site;
            (match d_not_taken with
            | `Run -> gen_delay "        " blk.Image.pb_delay
            | `Nop -> gen_delay "        " None
            | `Skip -> ());
            if not nt_falls then pf "        lj ();\n";
            pf "        %s\n" (target nt);
            pf "      end\n"
          | Image.Pjmp (t, falls) ->
            if falls then begin
              if t < 0 then
                raise
                  (Unsupported "fall-through jump to an unknown label");
              gen_flush ind !pi !pn;
              pf "      b_%d ()\n" t
            end
            else begin
              gen_flush ind (!pi + 1) !pn;
              pf "      bump %d;\n" ix_jumps;
              gen_delay ind blk.Image.pb_delay;
              pf "      %s\n" (target t)
            end
          | Image.Pjtab (r, table) ->
            gen_flush ind (!pi + 1) !pn;
            pf "      bump %d;\n" ix_indirect;
            gen_delay ind blk.Image.pb_delay;
            pf "      let ix = !r%d in\n" r;
            let n = Array.length table in
            if n = 0 then
              pf
                "      trap (Printf.sprintf \"jump table index %%d out of \
                 bounds (%%s)\" ix %S)\n"
                blk.Image.pb_label
            else begin
              pf
                "      if ix < 0 || ix >= %d then ignore (trap \
                 (Printf.sprintf \"jump table index %%d out of bounds \
                 (%%s)\" ix %S));\n"
                n blk.Image.pb_label;
              pf "      (match ix with\n";
              for j = 0 to n - 2 do
                pf "       | %d -> %s\n" j (target table.(j))
              done;
              pf "       | _ -> %s)\n" (target table.(n - 1))
            end
          | Image.Pret v ->
            gen_flush ind (!pi + 1) !pn;
            pf "      bump %d;\n" ix_returns;
            (* the delay slot runs before the return value is read *)
            gen_delay ind blk.Image.pb_delay;
            (match v with
            | None -> pf "      0\n"
            | Some (Image.Pimm n) -> pf "      (%d)\n" n
            | Some (Image.Preg r) -> pf "      !r%d\n" r)
          | Image.Ptrap_term msg ->
            gen_flush ind !pi !pn;
            pf "      trap %S\n" msg
          | Image.Praise_term e ->
            gen_flush ind !pi !pn;
            pf "      raisek %d\n" (raise_slot e)))
        f.Image.pf_blocks;
      pf "    in\n";
      pf "    b_0 ()\n"
    end
  in

  pf "(* generated by Sim.Native, plugin schema %d -- do not edit *)\n"
    schema_version;
  Buffer.add_string b ctx_decl;
  pf "exception Handoff of (ctx -> int)\n";
  pf "exception Exitp of int\n";
  pf "let entry (c : ctx) : int =\n";
  pf "  let mem = c.x_mem in\n";
  pf "  let input = c.x_input in\n";
  pf "  let ilen = String.length input in\n";
  pf "  let k = c.x_counters in\n";
  pf "  let out = c.x_out in\n";
  pf "  let trap = c.x_trap in\n";
  pf "  let max_depth = c.x_max_depth in\n";
  pf "  let upoll = c.x_use_poll in\n";
  pf "  let poll = c.x_poll in\n";
  pf "  let cancelled = c.x_cancelled in\n";
  pf "  let smode = c.x_sink_mode in\n";
  pf "  let sfun = c.x_sink_fun in\n";
  pf "  let ebuf = c.x_ebuf in\n";
  pf "  let ecap = Array.length ebuf in\n";
  pf "  let drain = c.x_drain in\n";
  pf "  let ublock = c.x_use_on_block in\n";
  pf "  let on_block = c.x_on_block in\n";
  pf "  let uprof = c.x_use_profile in\n";
  pf "  let prange = c.x_range in\n";
  pf "  let pcomb = c.x_comb in\n";
  pf "  let raisek = c.x_raise in\n";
  pf
    "  let fuel_msg = Printf.sprintf \"fuel exhausted (%%d instructions)\" \
     c.x_fuel in\n";
  pf "  let pos = ref 0 in\n";
  pf "  let fuel = ref c.x_fuel in\n";
  pf "  let cc_a = ref 0 in\n";
  pf "  let cc_b = ref 0 in\n";
  pf "  let depth = ref 0 in\n";
  pf "  let en = ref 0 in\n";
  pf "  let bump i = Array.unsafe_set k i (Array.unsafe_get k i + 1) in\n";
  pf "  let ch n =\n";
  pf "    Array.unsafe_set k 0 (Array.unsafe_get k 0 + n);\n";
  pf "    fuel := !fuel - n;\n";
  pf "    if !fuel < 0 then ignore (trap fuel_msg)\n";
  pf "  in\n";
  pf
    "  let fl pi pn = Array.unsafe_set k 9 (Array.unsafe_get k 9 + pn); ch pi \
     in\n";
  pf "  let np () = Array.unsafe_set k 9 (Array.unsafe_get k 9 + 1); ch 1 in\n";
  pf "  let lj () = bump %d; bump %d; ch 2 in\n" ix_jumps ix_nops;
  pf "  let oob nm i len =\n";
  pf
    "    ignore (trap (Printf.sprintf \"out-of-bounds access %%s[%%d] (size \
     %%d)\" nm i len))\n";
  pf "  in\n";
  pf "  let snk site tk =\n";
  pf "    if smode = 2 then begin\n";
  pf "      Array.unsafe_set ebuf !en ((site lsl 1) lor (if tk then 1 else 0));\n";
  pf "      incr en;\n";
  pf "      if !en >= ecap then begin\n";
  pf "        drain ebuf !en;\n";
  pf "        en := 0\n";
  pf "      end\n";
  pf "    end\n";
  pf "    else if smode = 1 then sfun site tk\n";
  pf "  in\n";
  pf "  let getch () =\n";
  pf "    if !pos >= ilen then -1\n";
  pf "    else begin\n";
  pf "      let c = Char.code (String.unsafe_get input !pos) in\n";
  pf "      incr pos;\n";
  pf "      c\n";
  pf "    end\n";
  pf "  in\n";
  Array.iteri (fun i _ -> pf "  let g%d = Array.unsafe_get mem %d in\n" i i)
    globals;
  if Array.length funcs = 0 then pf "  let f_none () = 0 in\n  ignore f_none;\n"
  else begin
    Array.iteri gen_func funcs;
    pf "  in\n"
  end;
  pf "  Fun.protect\n";
  pf
    "    ~finally:(fun () -> if smode = 2 && !en > 0 then begin drain ebuf \
     !en; en := 0 end)\n";
  pf "    (fun () ->\n";
  pf "      try\n";
  (if img.Image.main_id < 0 then pf "        trap \"call to unknown function main\"\n"
   else begin
     let mf = funcs.(img.Image.main_id) in
     pf "        if 0 >= max_depth then ignore (trap %S);\n"
       ("call depth exceeded in " ^ mf.Image.pf_name);
     if Array.length mf.Image.pf_params > 0 then
       pf "        trap %S\n" ("too few arguments to " ^ mf.Image.pf_name)
     else pf "        f_%d ()\n" img.Image.main_id
   end);
  pf "      with Exitp code -> code)\n";
  pf "let () = raise (Handoff entry)\n";
  (Buffer.contents b, Array.of_list (List.rev !raises))

(* ------------------------------------------------------------------ *)
(* Toolchain discovery                                                 *)
(* ------------------------------------------------------------------ *)

let find_in_path name =
  match Sys.getenv_opt "PATH" with
  | None -> None
  | Some p ->
    List.find_map
      (fun d ->
        if d = "" then None
        else
          let f = Filename.concat d name in
          if Sys.file_exists f then Some f else None)
      (String.split_on_char ':' p)

(* run [argv], sending both output streams to [log]; -1 = could not run *)
let run_process argv ~log =
  let fd =
    Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let pid =
    try Unix.create_process argv.(0) argv Unix.stdin fd fd
    with _ ->
      Unix.close fd;
      -1
  in
  if pid < 0 then -1
  else begin
    Unix.close fd;
    match Unix.waitpid [] pid with
    | _, Unix.WEXITED n -> n
    | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) -> 255
  end

let read_file_excerpt path limit =
  try
    let ic = open_in_bin path in
    let n = min limit (in_channel_length ic) in
    let s = really_input_string ic n in
    close_in ic;
    String.trim s
  with _ -> ""

type toolchain = { tc_ocamlfind : string; tc_version : string }

(* once-per-process memos, by hand: OCaml [lazy] is not domain-safe
   (two domains forcing at once raise CamlinternalLazy.Undefined), and
   suite jobs reach these from every domain in the pool.  Each memo has
   its own lock, taken strictly before the global [prepare] lock (the
   probe runs a full prepare) and never the other way round. *)
let memoize lock cell compute () =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match !cell with
      | Some r -> r
      | None ->
        let r = compute () in
        cell := Some r;
        r)

let toolchain_lock = Mutex.create ()
let toolchain_memo = ref None

let toolchain =
  memoize toolchain_lock toolchain_memo (fun () ->
      match find_in_path "ocamlfind" with
      | None -> Error "ocamlfind not found in PATH"
      | Some ocamlfind -> (
        let log = Filename.temp_file "bromc-native" ".ver" in
        let code = run_process [| ocamlfind; "ocamlopt"; "-version" |] ~log in
        let out = read_file_excerpt log 256 in
        (try Sys.remove log with _ -> ());
        if code <> 0 then
          Error
            (Printf.sprintf "ocamlfind ocamlopt -version failed (exit %d): %s"
               code out)
        else
          match String.split_on_char '\n' out with
          | v :: _ when String.trim v <> "" ->
            Ok { tc_ocamlfind = ocamlfind; tc_version = String.trim v }
          | _ -> Error "ocamlfind ocamlopt -version produced no output"))

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '+' | '-' -> c
      | _ -> '_')
    s

(* the fingerprint partitions the artifact store; loading still checks
   interface CRCs, so a wrong but colliding fingerprint degrades
   cleanly rather than misbehaving *)
let fingerprint_of tc =
  Printf.sprintf "%s-w%d-s%d" (sanitize tc.tc_version) Sys.word_size
    schema_version

(* ------------------------------------------------------------------ *)
(* Artifact store                                                      *)
(* ------------------------------------------------------------------ *)

let default_cache_root () =
  match !default_cache_dir_override with
  | Some d -> d
  | None -> (
    match Sys.getenv_opt "BROMC_NATIVE_CACHE" with
    | Some d when d <> "" -> d
    | _ -> (
      let home_cache () =
        match Sys.getenv_opt "HOME" with
        | Some h when h <> "" -> Filename.concat h ".cache"
        | _ -> Filename.get_temp_dir_name ()
      in
      let base =
        match Sys.getenv_opt "XDG_CACHE_HOME" with
        | Some d when d <> "" -> d
        | _ -> home_cache ()
      in
      Filename.concat (Filename.concat base "bromc") "native"))

let rec mkdirs d =
  if not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Artifact checksums and quarantine                                   *)
(* ------------------------------------------------------------------ *)

(* every installed [.cmxs] gets a [.sum] sidecar holding the MD5 of its
   bytes, verified before every disk-hit load.  Dynlink's own interface
   CRCs catch ABI skew but happily map a bit-flipped artifact whose
   tables still parse; the sidecar catches silent disk corruption
   before the code is executed.  A mismatching artifact is not deleted —
   it is moved aside into [root/quarantine/] (forensics beat erasure)
   and rebuilt from source as if it had never existed. *)

let sum_path cmxs = cmxs ^ ".sum"

let file_digest path =
  try Some (Digest.to_hex (Digest.file path)) with _ -> None

let write_sum cmxs =
  match file_digest cmxs with
  | None -> ()
  | Some d -> (
    try
      let oc = open_out_bin (sum_path cmxs) in
      output_string oc d;
      close_out oc
    with _ -> ())

let read_sum cmxs =
  try
    let ic = open_in_bin (sum_path cmxs) in
    let s = try String.trim (input_line ic) with End_of_file -> "" in
    close_in_noerr ic;
    if String.length s = 32 then Some s else None
  with _ -> None

(* [None] = no sidecar (an artifact predating checksums); [Some ok] *)
let checksum_ok cmxs =
  match read_sum cmxs with
  | None -> None
  | Some expect -> (
    match file_digest cmxs with
    | Some actual -> Some (String.equal actual expect)
    | None -> Some false)

let quarantine_dir_name = "quarantine"

(* move a failed artifact (and its sidecar) aside under
   [root/quarantine/], renamed so nothing ever loads or lists it as a
   cache entry again *)
let quarantine ~root cmxs =
  let qdir = Filename.concat root quarantine_dir_name in
  mkdirs qdir;
  let tag = Filename.basename (Filename.dirname cmxs) in
  let dest =
    Filename.concat qdir (tag ^ "-" ^ Filename.basename cmxs ^ ".quarantined")
  in
  (try Sys.rename cmxs dest
   with _ -> ( try Sys.remove cmxs with _ -> ()));
  (try Sys.remove (sum_path cmxs) with _ -> ());
  incr s_quarantined

let remove_tree dir =
  let removed = ref 0 in
  let rec go d =
    match Sys.readdir d with
    | entries ->
      Array.iter
        (fun e ->
          let p = Filename.concat d e in
          if Sys.is_directory p then go p
          else begin
            (try Sys.remove p with _ -> ());
            incr removed
          end)
        entries;
      (try Unix.rmdir d with _ -> ())
    | exception _ -> ()
  in
  go dir;
  !removed

(* ------------------------------------------------------------------ *)
(* Compilation and loading                                             *)
(* ------------------------------------------------------------------ *)

(* serializes codegen-compile-load and the memo table: Dynlink is not
   safe to call from several domains at once *)
let lock = Mutex.create ()

(* the in-process memo of loaded entry points, bounded by an LRU cap so
   a long-running daemon serving an open-ended stream of programs does
   not grow its table without limit.  Eviction drops the table's
   reference to the entry closure (a later request reloads from the
   on-disk store); the mapped plugin code itself is never unloaded —
   Dynlink cannot — so the cap bounds table growth, not address space
   already paid for. *)
type memo_entry = { me_entry : ctx -> int; mutable me_tick : int }

let memo : (string, memo_entry) Hashtbl.t = Hashtbl.create 16
let memo_tick = ref 0

let default_memo_capacity =
  match Sys.getenv_opt "BROMC_NATIVE_MEMO_CAP" with
  | Some s -> ( match int_of_string_opt s with Some n when n >= 0 -> n | _ -> 512)
  | None -> 512

let memo_cap = ref default_memo_capacity

(* caller holds [lock] *)
let enforce_memo_cap_locked () =
  if !memo_cap > 0 then
    while Hashtbl.length memo > !memo_cap do
      let victim = ref None in
      Hashtbl.iter
        (fun k (e : memo_entry) ->
          match !victim with
          | Some (_, t) when t <= e.me_tick -> ()
          | _ -> victim := Some (k, e.me_tick))
        memo;
      match !victim with
      | None -> assert false
      | Some (k, _) ->
        Hashtbl.remove memo k;
        incr s_memo_evictions
    done

let set_memo_capacity n =
  if n < 0 then invalid_arg "Native.set_memo_capacity: negative";
  Mutex.lock lock;
  memo_cap := n;
  enforce_memo_cap_locked ();
  Mutex.unlock lock

let memo_capacity () = !memo_cap

let stats () =
  Mutex.lock lock;
  let entries = Hashtbl.length memo in
  Mutex.unlock lock;
  {
    memo_hits = !s_memo_hits;
    disk_hits = !s_disk_hits;
    misses = !s_misses;
    compiles = !s_compiles;
    memo_evictions = !s_memo_evictions;
    memo_entries = entries;
    memo_capacity = !memo_cap;
    quarantined = !s_quarantined;
  }

let clear_memo () =
  Mutex.lock lock;
  Hashtbl.reset memo;
  Mutex.unlock lock

(* fish the entry closure out of the plugin's [Handoff] initializer
   exception (see the header comment) *)
let load_entry path : (ctx -> int, string) Stdlib.result =
  match Dynlink.loadfile_private path with
  | () -> Error "plugin loaded but did not hand off an entry point"
  | exception Dynlink.Error (Dynlink.Library's_module_initializers_failed e)
    ->
    let r = Obj.repr e in
    let is_handoff =
      Obj.is_block r
      && Obj.size r = 2
      &&
      let slot = Obj.field r 0 in
      Obj.is_block slot
      && Obj.size slot >= 1
      &&
      let name = Obj.field slot 0 in
      Obj.tag name = Obj.string_tag
      &&
      let s : string = Obj.obj name in
      let suffix = ".Handoff" in
      let ls = String.length s and lx = String.length suffix in
      ls > lx && String.sub s (ls - lx) lx = suffix
    in
    if is_handoff then Ok (Obj.obj (Obj.field r 1) : ctx -> int)
    else Error ("plugin initializer raised: " ^ Printexc.to_string e)
  | exception Dynlink.Error err -> Error (Dynlink.error_message err)
  | exception e -> Error (Printexc.to_string e)

type t = {
  n_image : Image.t;
  n_entry : ctx -> int;
  n_raises : exn array;
  n_key : string;
}

let image t = t.n_image

let compile_and_load tc ~build_dir ~modname ~source ~install =
  mkdirs build_dir;
  let src = Filename.concat build_dir (modname ^ ".ml") in
  let out = Filename.concat build_dir (modname ^ ".cmxs") in
  let log = Filename.concat build_dir "compile.log" in
  let oc = open_out_bin src in
  output_string oc source;
  close_out oc;
  let code =
    run_process
      [| tc.tc_ocamlfind; "ocamlopt"; "-shared"; "-w"; "-a"; "-o"; out; src |]
      ~log
  in
  if code <> 0 then begin
    let excerpt = read_file_excerpt log 800 in
    ignore (remove_tree build_dir);
    Error
      (Printf.sprintf "ocamlfind ocamlopt -shared failed (exit %d): %s" code
         excerpt)
  end
  else begin
    incr s_compiles;
    let final =
      match install with
      | Some dest ->
        mkdirs (Filename.dirname dest);
        (try Sys.rename out dest with _ -> ());
        if Sys.file_exists dest then begin
          write_sum dest;
          dest
        end
        else out
      | None -> out
    in
    let r = load_entry final in
    (* the object file can be unlinked once mapped *)
    if install = None || final <> Filename.concat build_dir (modname ^ ".cmxs")
    then ignore (remove_tree build_dir);
    r
  end

let prepare ?cache_dir ?use_cache img : (t, string) Stdlib.result =
  if not !enabled_flag then Error "native backend disabled"
  else
    match generate img with
    | exception Unsupported msg -> Error ("code generation: " ^ msg)
    | source, n_raises -> (
      match toolchain () with
      | Error e -> Error e
      | Ok tc ->
        let fpr = fingerprint_of tc in
        let key = Digest.to_hex (Digest.string (fpr ^ "\n" ^ source)) in
        let modname = "bromc_native_" ^ key in
        let finish entry =
          Ok { n_image = img; n_entry = entry; n_raises; n_key = key }
        in
        Mutex.lock lock;
        let r =
          match Hashtbl.find_opt memo key with
          | Some me ->
            incr s_memo_hits;
            incr memo_tick;
            me.me_tick <- !memo_tick;
            finish me.me_entry
          | None -> (
            let use_cache =
              match use_cache with
              | Some b -> b
              | None -> !default_use_cache
            in
            let root =
              match cache_dir with
              | Some d -> d
              | None -> default_cache_root ()
            in
            let cached =
              Filename.concat (Filename.concat root fpr) (modname ^ ".cmxs")
            in
            let build ~counted_miss =
              if not counted_miss then incr s_misses;
              let build_dir =
                if use_cache then
                  Filename.concat root
                    (Printf.sprintf "tmp-%d-%s" (Unix.getpid ()) key)
                else
                  Filename.concat
                    (Filename.get_temp_dir_name ())
                    (Printf.sprintf "bromc-native-%d-%s" (Unix.getpid ()) key)
              in
              compile_and_load tc ~build_dir ~modname ~source
                ~install:(if use_cache then Some cached else None)
            in
            let rebuild_after_quarantine () =
              quarantine ~root cached;
              incr s_misses;
              build ~counted_miss:true
            in
            let loaded =
              if use_cache && Sys.file_exists cached then begin
                match checksum_ok cached with
                | Some false ->
                  (* bytes do not match the sidecar: the store is
                     corrupt; move the artifact aside and rebuild *)
                  rebuild_after_quarantine ()
                | (Some true | None) as verdict -> (
                  (* no sidecar = an artifact predating checksums:
                     adopt it by writing one now *)
                  if verdict = None then write_sum cached;
                  match load_entry cached with
                  | Ok e ->
                    incr s_disk_hits;
                    Ok e
                  | Error _ ->
                    (* checksum fine but Dynlink rejects it (stale
                       schema, ABI skew): same remedy *)
                    rebuild_after_quarantine ())
              end
              else build ~counted_miss:false
            in
            match loaded with
            | Ok entry ->
              incr memo_tick;
              Hashtbl.replace memo key { me_entry = entry; me_tick = !memo_tick };
              enforce_memo_cap_locked ();
              finish entry
            | Error e -> Error e)
        in
        Mutex.unlock lock;
        r)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_memory (img : Image.t) =
  Array.map
    (fun (g : Image.global) ->
      match g.Image.g_init with
      | Some init ->
        let arr = Array.make g.Image.g_size 0 in
        Array.blit init 0 arr 0 (Array.length init);
        arr
      | None -> Array.make g.Image.g_size 0)
    img.Image.globals

let no_sink_fun _ _ = ()
let no_drain _ _ = ()
let no_block _ _ = ()
let no_range _ _ = ()
let no_comb _ _ = ()
let never () = false

let event_buffer_size = 8192

let exec ?(config = default_config) ?profile ?(sink = Predictor.Sink_none)
    ?on_block t ~input =
  let k = Array.make 10 0 in
  let out = Buffer.create 1024 in
  let sink_mode, sink_fun, ebuf, drain =
    match sink with
    | Predictor.Sink_none -> (0, no_sink_fun, [||], no_drain)
    | Predictor.Sink_fun f ->
      (1, (fun site taken -> f ~site ~taken), [||], no_drain)
    | Predictor.Sink_bank bank ->
      ( 2,
        no_sink_fun,
        Array.make event_buffer_size 0,
        fun buf n -> Predictor.bank_drain bank buf n )
  in
  let raises = t.n_raises in
  let ctx =
    {
      x_mem = fresh_memory t.n_image;
      x_input = input;
      x_fuel = config.fuel;
      x_max_depth = config.max_depth;
      x_counters = k;
      x_out = out;
      x_trap = (fun msg -> raise (Trap msg));
      x_cancelled = (fun () -> raise Cancelled);
      x_poll = (match config.cancel with Some f -> f | None -> never);
      x_use_poll = config.cancel <> None;
      x_sink_mode = sink_mode;
      x_sink_fun = sink_fun;
      x_ebuf = ebuf;
      x_drain = drain;
      x_on_block =
        (match on_block with
        | Some f -> fun func label -> f ~func ~label
        | None -> no_block);
      x_use_on_block = on_block <> None;
      x_range =
        (match profile with
        | Some p -> fun id v -> Profile.record_range p id v
        | None -> no_range);
      x_comb =
        (match profile with
        | Some p ->
          fun id rd ->
            Profile.record_comb p id ~read_reg:(fun r ->
                rd (Mir.Reg.to_int r))
        | None -> no_comb);
      x_use_profile = profile <> None;
      x_raise = (fun i -> raise raises.(i));
    }
  in
  let exit_code = t.n_entry ctx in
  let c = Counters.make () in
  c.Counters.insns <- k.(ix_insns);
  c.Counters.cond_branches <- k.(ix_cond);
  c.Counters.taken_branches <- k.(ix_taken);
  c.Counters.jumps <- k.(ix_jumps);
  c.Counters.indirect_jumps <- k.(ix_indirect);
  c.Counters.calls <- k.(ix_calls);
  c.Counters.returns <- k.(ix_returns);
  c.Counters.loads <- k.(ix_loads);
  c.Counters.stores <- k.(ix_stores);
  c.Counters.nops <- k.(ix_nops);
  { counters = c; output = Buffer.contents out; exit_code }

let run_image ?config ?profile ?sink ?on_branch ?on_block ?cache_dir
    ?use_cache img ~input =
  let sink =
    match (sink, on_branch) with
    | Some s, _ -> Some s
    | None, Some f -> Some (Predictor.Sink_fun f)
    | None, None -> None
  in
  match prepare ?cache_dir ?use_cache img with
  | Error msg -> raise (Unavailable msg)
  | Ok t -> exec ?config ?profile ?sink ?on_block t ~input

let run ?config ?profile ?on_branch ?on_block p ~input =
  run_image ?config ?profile ?on_branch ?on_block (Image.build p) ~input

(* ------------------------------------------------------------------ *)
(* Availability probe                                                  *)
(* ------------------------------------------------------------------ *)

(* a one-block one-function image: the probe exercises the whole
   pipeline — generate, compile, load, hand off, execute *)
let probe_image : Image.t =
  {
    Image.funcs =
      [|
        {
          Image.pf_name = "main";
          pf_params = [||];
          pf_nregs = 1;
          pf_blocks =
            [|
              {
                Image.pb_label = "entry";
                pb_insns = [||];
                pb_term = Image.Pret None;
                pb_delay = None;
                pb_annul = false;
                pb_site = 0;
              };
            |];
          pf_unknown = [||];
        };
      |];
    main_id = 0;
    globals = [||];
    nsites = 0;
  }

let probe_lock = Mutex.create ()
let probe_memo = ref None

let probe =
  memoize probe_lock probe_memo (fun () ->
      match prepare probe_image with
      | Error e -> Error e
      | Ok t -> (
        match exec t ~input:"" with
        | { exit_code = 0; _ } -> Ok ()
        | r -> Error (Printf.sprintf "probe returned %d" r.exit_code)
        | exception e -> Error (Printexc.to_string e)))

let available () =
  !enabled_flag && match probe () with Ok () -> true | Error _ -> false

(* ------------------------------------------------------------------ *)
(* Cache maintenance                                                   *)
(* ------------------------------------------------------------------ *)

module Cache = struct
  let default_dir () = default_cache_root ()

  let fingerprint () =
    match toolchain () with
    | Ok tc -> Some (fingerprint_of tc)
    | Error _ -> None

  type entry = {
    e_fingerprint : string;
    e_files : int;
    e_bytes : int;
    e_current : bool;
  }

  let list ?dir () =
    let root = match dir with Some d -> d | None -> default_cache_root () in
    let current = fingerprint () in
    match Sys.readdir root with
    | exception _ -> []
    | entries ->
      Array.to_list entries
      |> List.filter_map (fun name ->
             let d = Filename.concat root name in
             if name = quarantine_dir_name || not (Sys.is_directory d) then None
             else
               let files = ref 0 and bytes = ref 0 in
               (match Sys.readdir d with
               | fs ->
                 Array.iter
                   (fun f ->
                     if Filename.check_suffix f ".cmxs" then begin
                       incr files;
                       bytes :=
                         !bytes
                         + (try (Unix.stat (Filename.concat d f)).Unix.st_size
                            with _ -> 0)
                     end)
                   fs
               | exception _ -> ());
               Some
                 {
                   e_fingerprint = name;
                   e_files = !files;
                   e_bytes = !bytes;
                   e_current = current = Some name;
                 })
      |> List.sort compare

  let clear ?dir () =
    let root = match dir with Some d -> d | None -> default_cache_root () in
    match Sys.readdir root with
    | exception _ -> 0
    | entries ->
      Array.fold_left
        (fun acc name ->
          let d = Filename.concat root name in
          if Sys.is_directory d then acc + remove_tree d
          else begin
            (try Sys.remove d with _ -> ());
            acc + 1
          end)
        0 entries

  let evict_stale ?dir () =
    let root = match dir with Some d -> d | None -> default_cache_root () in
    match fingerprint () with
    | None -> 0
    | Some current -> (
      match Sys.readdir root with
      | exception _ -> 0
      | entries ->
        Array.fold_left
          (fun acc name ->
            let d = Filename.concat root name in
            if
              Sys.is_directory d && name <> current
              && name <> quarantine_dir_name
            then acc + remove_tree d
            else acc)
          0 entries)

  type verify_report = {
    v_checked : int;
    v_ok : int;
    v_healed : int;  (* legacy artifacts adopted by writing a sidecar *)
    v_quarantined : int;
  }

  (* proactive sweep: digest every cached artifact against its sidecar
     without waiting for a request to trip over the corruption.  Run by
     [bromc cache --verify] (and the chaos CI job). *)
  let verify ?dir () =
    let root = match dir with Some d -> d | None -> default_cache_root () in
    let checked = ref 0 and ok = ref 0 and healed = ref 0 in
    let quarantined = ref 0 in
    (match Sys.readdir root with
    | exception _ -> ()
    | entries ->
      Array.iter
        (fun name ->
          let d = Filename.concat root name in
          if name <> quarantine_dir_name && Sys.is_directory d then
            match Sys.readdir d with
            | exception _ -> ()
            | fs ->
              Array.iter
                (fun f ->
                  if Filename.check_suffix f ".cmxs" then begin
                    let cmxs = Filename.concat d f in
                    incr checked;
                    match checksum_ok cmxs with
                    | Some true -> incr ok
                    | None ->
                      write_sum cmxs;
                      incr healed
                    | Some false ->
                      quarantine ~root cmxs;
                      incr quarantined
                  end)
                fs)
        entries);
    {
      v_checked = !checked;
      v_ok = !ok;
      v_healed = !healed;
      v_quarantined = !quarantined;
    }
  end
