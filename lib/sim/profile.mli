(** Profile-counter runtime.

    The reordering pass inserts {!Mir.Insn.Profile_range} /
    {!Mir.Insn.Profile_comb} pseudo instructions at sequence heads and
    registers a descriptor for each sequence id here; the machine updates
    the counters as the instrumented program runs on training input
    (paper Section 5).  The descriptors are MIR-level so that the
    simulator does not depend on the reordering library. *)

type range_seq = {
  bounds : (int * int) array;
      (** nonoverlapping [lo, hi] ranges, sorted by [lo], jointly covering
          every representable value *)
  counts : int array;  (** one counter per range *)
  mutable executions : int;  (** times the sequence head was reached *)
}

type comb_seq = {
  conds : (Mir.Cond.t * Mir.Operand.t * Mir.Operand.t) array;
      (** branch conditions, in original order; evaluated against the
          current register file *)
  comb_counts : int array;  (** 2^n counters indexed by outcome bitmask
                                (bit i set = condition i true) *)
  mutable comb_executions : int;
}

type t

val make : unit -> t
val register_range_seq : t -> int -> (int * int) array -> range_seq
val register_comb_seq :
  t -> int -> (Mir.Cond.t * Mir.Operand.t * Mir.Operand.t) array -> comb_seq

val find_range_seq : t -> int -> range_seq option
val find_comb_seq : t -> int -> comb_seq option

val record_range : t -> int -> int -> unit
(** [record_range t id v]: bump the counter of the range containing [v].
    Raises [Invalid_argument] on an unregistered id or uncovered value. *)

val record_comb : t -> int -> read_reg:(Mir.Reg.t -> int) -> unit
(** Evaluate all conditions of sequence [id] and bump the combination
    counter. *)

val copy_shape : t -> t
(** [copy_shape t] is a fresh table with the same registered sequence
    descriptors and all counters zeroed — a per-domain {e shard} of
    [t].  Descriptor arrays (bounds, conditions) are shared; counter
    arrays are private. *)

val absorb : into:t -> t -> int
(** [absorb ~into shard] adds every counter of [shard] into the
    matching sequence of [into] and zeroes [shard], so repeated merges
    never double-count.  Sequences unknown to [into] are ignored.
    Returns the number of counter increments moved.  Not atomic: the
    caller must ensure nobody records into [shard] during the merge. *)

val total_executions : t -> int
(** Sum of [executions] over every registered sequence — a cheap
    "how much profile have we accumulated" gauge. *)

val counters :
  t -> (int * int array * int) list * (int * int array * int) list
(** [(ranges, combs)] — every registered sequence's raw counter state as
    [(id, counts, executions)], sorted by id, counter arrays copied.
    The durable-state layer persists exactly this: descriptors (bounds,
    conditions) are redundant with the program the ids were detected on
    and are rebuilt by re-detection, not stored. *)

val set_counters :
  t ->
  ranges:(int * int array * int) list ->
  combs:(int * int array * int) list ->
  int
(** Overwrite the counters of every sequence whose id and counter-array
    length match (others — e.g. from an incompatible detection — are
    silently skipped).  Returns how many sequences were applied.  The
    inverse of {!counters} on a table with the same registered shape. *)
