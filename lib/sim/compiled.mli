(** Closure-compiled execution backend ("threaded code").

    Lowers each {!Image.pblock} into a chain of OCaml closures built
    once at compile time: operand shapes are resolved, builtins and
    callees are bound, immediate-only arithmetic is constant-folded,
    and the per-instruction [match] dispatch of the pre-decoded
    interpreter disappears.  Counter and fuel updates are charged in
    block-granular batches precomputed at compile time, with a flush
    before every observable point so traps, fuel exhaustion and the ten
    counters are byte-identical to the other two backends.

    Branch measurement is fused into the loop: conditional-branch
    terminators deliver their outcome straight to a {!Predictor.sink},
    so driving a prebuilt predictor bank allocates nothing per branch
    event. *)

type t
(** A compiled program.  Compile once, execute many times — executions
    are independent (fresh memory, registers and counters each run). *)

val compile : Image.t -> t

val image : t -> Image.t
(** The image this program was compiled from (e.g. for {!Image.sites}). *)

val exec :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?sink:Predictor.sink ->
  ?on_block:(func:string -> label:string -> unit) ->
  t ->
  input:string ->
  Runtime.result
(** Run a compiled program.  [sink] defaults to {!Predictor.Sink_none};
    pass [Sink_bank] for allocation-free measurement or [Sink_fun] for
    the classic [on_branch] closure protocol. *)

val run_image :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  Image.t ->
  input:string ->
  Runtime.result
(** Compile and run in one step, with the same interface as
    [Machine.run_image]. *)

val run :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  Mir.Program.t ->
  input:string ->
  Runtime.result
(** Build, compile and run a program. *)
