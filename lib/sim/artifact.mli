(** Content-hash artifact caches with single-flight builds.

    A cache maps content-hash keys (the caller picks the hashing
    discipline; [Digest.to_hex] of the source text plus any config
    fingerprint is the usual choice) to built artifacts: parsed MIR,
    pre-decoded {!Image.t}s, compiled closure programs.  The cache is
    safe to share across domains and guarantees {e single-flight}
    builds: when several domains request the same cold key at once,
    exactly one runs the build function while the rest block until the
    artifact is ready and then share it.

    Entries are kept under an optional LRU capacity; eviction drops the
    cache's reference to the artifact (the GC reclaims it once the last
    user lets go) and is counted in {!stats}.

    Every cache created with {!create} is also registered in a global
    process-local registry so diagnostic surfaces ([bromc cache stats],
    the serve protocol's [stats] request) can enumerate the caches that
    exist in this process without threading handles around. *)

type 'a t

type stats = {
  a_name : string;  (** the [~name] given to {!create} *)
  a_entries : int;  (** resident artifacts *)
  a_capacity : int;  (** LRU cap; 0 = unbounded *)
  a_hits : int;
      (** requests served from a resident artifact, including waiters
          that blocked on another domain's in-flight build *)
  a_misses : int;  (** requests that found the key cold *)
  a_builds : int;  (** build functions actually run (once per cold key) *)
  a_evictions : int;  (** artifacts dropped by the LRU cap *)
  a_failures : int;  (** builds that raised; the key stays cold *)
}

val create : ?capacity:int -> name:string -> unit -> 'a t
(** [create ~name ()] makes an empty cache and registers it for
    {!registered_stats}.  [capacity] bounds resident entries (least
    recently used evicted first); 0 (the default) means unbounded. *)

val find_or_build : 'a t -> string -> (unit -> 'a) -> 'a
(** [find_or_build t key build] returns the artifact under [key],
    running [build] at most once per cold key regardless of how many
    domains ask concurrently.  If [build] raises, the exception is
    re-raised in the building domain and the key is left cold; a waiter
    that was blocked on the failed build takes over and runs [build]
    itself rather than inheriting the failure. *)

val find : 'a t -> string -> 'a option
(** Peek without building (counts a hit or a miss). *)

val remove : 'a t -> string -> unit
(** Drop a key if resident.  In-flight builds are not interrupted. *)

val clear : 'a t -> int
(** Drop every resident artifact; returns how many were dropped.
    Counters are kept (they describe the process, not the contents). *)

val stats : 'a t -> stats
val name : 'a t -> string

val registered_stats : unit -> stats list
(** Stats for every cache created in this process, in creation order. *)

val clear_registered : unit -> int
(** {!clear} every registered cache; returns total artifacts dropped. *)
