(* Types shared by every execution backend (reference, pre-decoded,
   closure-compiled).  Lives below Machine and Compiled so the two can
   agree on traps, configuration and results without depending on each
   other; Machine re-exports everything under its historical names. *)

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

exception Program_exit of int

exception Cancelled

type config = {
  fuel : int;
  max_depth : int;
  cancel : (unit -> bool) option;
}

let default_config = { fuel = 2_000_000_000; max_depth = 10_000; cancel = None }

(* Deadline-based cancellation flag for [config.cancel].  The flag is
   polled once per executed basic block, so the clock read is amortized
   over a window of polls; once expired it latches, making every later
   poll (including from subsequent runs sharing the flag) cancel
   immediately. *)
let watchdog ~ms =
  let deadline = Unix.gettimeofday () +. (float_of_int ms /. 1000.0) in
  let ticks = ref 0 in
  let expired = ref false in
  fun () ->
    !expired
    ||
    begin
      incr ticks;
      if !ticks land 2047 = 0 && Unix.gettimeofday () > deadline then
        expired := true;
      !expired
    end

type result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}
