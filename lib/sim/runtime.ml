(* Types shared by every execution backend (reference, pre-decoded,
   closure-compiled).  Lives below Machine and Compiled so the two can
   agree on traps, configuration and results without depending on each
   other; Machine re-exports everything under its historical names. *)

exception Trap of string

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

exception Program_exit of int

type config = {
  fuel : int;
  max_depth : int;
}

let default_config = { fuel = 2_000_000_000; max_depth = 10_000 }

type result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}
