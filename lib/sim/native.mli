(** Native execution backend: runtime OCaml code generation.

    Emits a {!Image.t} as OCaml source — basic blocks become mutually
    tail-recursive functions, registers become [let]-bound mutable
    cells, counter/fuel charging and predictor-event delivery are
    inlined at branch terminators — compiles it out of process with
    [ocamlfind ocamlopt -shared], loads the resulting [.cmxs] with
    [Dynlink.loadfile_private], and executes it with observable
    behaviour byte-identical to the other three backends (output, exit
    code, the ten counters, branch-site event stream, block trace, trap
    messages, cooperative cancellation at block granularity).

    Compiled artifacts are cached on disk keyed by the content hash of
    the generated source (which the image fully determines) plus a
    compiler/ABI fingerprint, so repeated runs of the same image pay
    code generation once per machine, and once per process thanks to an
    in-memory table of loaded entry points.

    Hosts without a working [ocamlfind]/native toolchain do not fail:
    {!prepare} returns [Error], {!run_image} raises {!Unavailable}, and
    callers (the driver's degradation ladder, the CLI) fall back to the
    closure backend. *)

exception Unavailable of string
(** Native execution could not be used: toolchain missing, code
    generation failed, compilation failed, or the plugin would not
    load.  Never raised for errors of the simulated program — those are
    {!Runtime.Trap}, {!Runtime.Program_exit}, {!Runtime.Cancelled},
    exactly as in the other backends. *)

val set_enabled : bool -> unit
(** Force-disable (or re-enable) the backend for this process; when
    disabled, {!available} is false and {!prepare} fails without
    probing.  Starts disabled when the [BROMC_NO_NATIVE] environment
    variable is set. *)

val enabled : unit -> bool

val available : unit -> bool
(** Probe (once per process, cached) whether native execution works
    end to end: generate, compile and load a trivial plugin. *)

val set_default_cache_dir : string option -> unit
(** Override the on-disk artifact store location for calls that do not
    pass [~cache_dir] ([None] restores the built-in default: the
    [BROMC_NATIVE_CACHE] environment variable, else
    [$XDG_CACHE_HOME/bromc/native], else [~/.cache/bromc/native]). *)

val set_default_use_cache : bool -> unit
(** Disable the on-disk store for calls that do not pass [~use_cache];
    artifacts are then built in a temporary directory and deleted after
    loading.  The in-memory table of loaded entry points still applies. *)

type t
(** A loaded image: generated, compiled (or fetched from the cache) and
    dynlinked, ready to execute any number of times. *)

val image : t -> Image.t

val prepare :
  ?cache_dir:string -> ?use_cache:bool -> Image.t -> (t, string) result
(** Generate, compile and load [img].  [Error] carries a diagnostic
    (toolchain missing, compiler output, ...) and leaves the caller
    free to degrade to another backend. *)

val exec :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?sink:Predictor.sink ->
  ?on_block:(func:string -> label:string -> unit) ->
  t ->
  input:string ->
  Runtime.result
(** Execute a prepared image; the mirror of {!Compiled.exec}.  With
    [Sink_bank] the branch events are buffered in the generated code
    and folded into the bank in batches ({!Predictor.bank_drain}) —
    final bank state, lookups and mispredict counts are identical to
    streaming delivery.  [Sink_fun] and [on_block] stream in execution
    order, as everywhere else. *)

val run_image :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?sink:Predictor.sink ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  ?cache_dir:string ->
  ?use_cache:bool ->
  Image.t ->
  input:string ->
  Runtime.result
(** {!prepare} + {!exec} (the prepared entry is memoized in-process, so
    repeated calls on equal images do not re-prepare).  Raises
    {!Unavailable} when the backend cannot run.  [on_branch] is
    shorthand for [~sink:(Sink_fun ...)]. *)

val run :
  ?config:Runtime.config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  Mir.Program.t ->
  input:string ->
  Runtime.result
(** [run_image] of {!Image.build}. *)

val generate : Image.t -> string * exn array
(** The generated plugin source and the table of decode-time exceptions
    re-raised by [Praise_term] terminators (exposed for tests: the
    source is the cache key's content, so equal images must generate
    byte-identical source). *)

type stats = {
  memo_hits : int;  (** image already loaded in this process *)
  disk_hits : int;  (** [.cmxs] served from the on-disk store *)
  misses : int;  (** artifact absent: the compiler had to run *)
  compiles : int;  (** successful out-of-process compilations *)
  memo_evictions : int;  (** entries dropped by the LRU cap *)
  memo_entries : int;  (** entry points currently in the memo table *)
  memo_capacity : int;  (** LRU cap; 0 = unbounded *)
  quarantined : int;
      (** artifacts moved aside after a checksum or load failure *)
}

val stats : unit -> stats
val reset_stats : unit -> unit
(** Resets the event counters (hits/misses/compiles/evictions); the
    memo table itself and its capacity are left alone. *)

val set_memo_capacity : int -> unit
(** Bound the in-process memo of loaded entry points to [n] entries,
    evicting least-recently-used entries immediately if over; 0 removes
    the bound.  Default 512, overridable with [BROMC_NATIVE_MEMO_CAP].
    Eviction only drops the table's reference — mapped plugin code
    cannot be unloaded — so this bounds table growth in a long-running
    daemon, and a re-request is served from the on-disk store. *)

val memo_capacity : unit -> int

val clear_memo : unit -> unit
(** Drop the in-process table of loaded entry points (already-mapped
    plugins stay mapped); the next {!prepare} of a known image is
    served from the on-disk store again.  For cache tests — production
    code has no reason to call this. *)

(** The on-disk artifact store.  Layout: one subdirectory per
    compiler/ABI fingerprint, one [.cmxs] per image content hash with a
    [.sum] sidecar holding the MD5 of its bytes.  The sidecar is
    verified before every disk-hit load; an artifact that fails the
    check (or that [Dynlink] rejects) is moved aside into a
    [quarantine/] subdirectory — never silently deleted — and rebuilt
    from source. *)
module Cache : sig
  val default_dir : unit -> string

  val fingerprint : unit -> string option
  (** The current toolchain's fingerprint subdirectory name, or [None]
      when no compiler is available. *)

  type entry = {
    e_fingerprint : string;
    e_files : int;
    e_bytes : int;
    e_current : bool;  (** matches the running toolchain *)
  }

  val list : ?dir:string -> unit -> entry list

  val clear : ?dir:string -> unit -> int
  (** Remove every cached artifact; returns the number of files
      removed. *)

  val evict_stale : ?dir:string -> unit -> int
  (** Remove artifacts whose fingerprint differs from the running
      toolchain's (requires a working compiler to know which one that
      is); returns the number of files removed.  The [quarantine/]
      subdirectory is preserved. *)

  type verify_report = {
    v_checked : int;  (** artifacts digested *)
    v_ok : int;  (** sidecar present and matching *)
    v_healed : int;  (** pre-checksum artifacts adopted (sidecar written) *)
    v_quarantined : int;  (** mismatches moved to [quarantine/] *)
  }

  val verify : ?dir:string -> unit -> verify_report
  (** Proactive integrity sweep: digest every cached [.cmxs] against
      its [.sum] sidecar without waiting for a load to trip over the
      corruption.  Mismatches are quarantined (the next request
      rebuilds them); artifacts predating checksums get a sidecar
      written from their current bytes. *)
end
