type stats = {
  a_name : string;
  a_entries : int;
  a_capacity : int;
  a_hits : int;
  a_misses : int;
  a_builds : int;
  a_evictions : int;
  a_failures : int;
}

(* a slot is either a ready artifact (with an LRU tick) or a marker
   that some domain is building it right now; waiters sleep on [cond]
   until the marker is replaced or removed *)
type 'a entry = { value : 'a; mutable tick : int }
type 'a slot = Ready of 'a entry | Building

type 'a t = {
  name : string;
  capacity : int;
  table : (string, 'a slot) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable builds : int;
  mutable evictions : int;
  mutable failures : int;
}

(* process-local registry: stats/clear thunks, creation order *)
let registry : (unit -> stats) list ref = ref []
let registry_clear : (unit -> int) list ref = ref []
let registry_lock = Mutex.create ()

let stats_locked t =
  let entries =
    Hashtbl.fold
      (fun _ slot n -> match slot with Ready _ -> n + 1 | Building -> n)
      t.table 0
  in
  {
    a_name = t.name;
    a_entries = entries;
    a_capacity = t.capacity;
    a_hits = t.hits;
    a_misses = t.misses;
    a_builds = t.builds;
    a_evictions = t.evictions;
    a_failures = t.failures;
  }

let stats t =
  Mutex.lock t.lock;
  let s = stats_locked t in
  Mutex.unlock t.lock;
  s

let name t = t.name

let clear t =
  Mutex.lock t.lock;
  let dropped = ref 0 in
  let keep = Hashtbl.create 4 in
  Hashtbl.iter
    (fun k slot ->
      match slot with
      | Building -> Hashtbl.replace keep k slot
      | Ready _ -> incr dropped)
    t.table;
  Hashtbl.reset t.table;
  Hashtbl.iter (Hashtbl.replace t.table) keep;
  Mutex.unlock t.lock;
  !dropped

let create ?(capacity = 0) ~name () =
  let t =
    {
      name;
      capacity;
      table = Hashtbl.create 16;
      lock = Mutex.create ();
      cond = Condition.create ();
      tick = 0;
      hits = 0;
      misses = 0;
      builds = 0;
      evictions = 0;
      failures = 0;
    }
  in
  Mutex.lock registry_lock;
  registry := !registry @ [ (fun () -> stats t) ];
  registry_clear := !registry_clear @ [ (fun () -> clear t) ];
  Mutex.unlock registry_lock;
  t

let touch (t : 'a t) (e : 'a entry) =
  t.tick <- t.tick + 1;
  e.tick <- t.tick

(* evict least-recently-used Ready entries until within capacity;
   Building markers are never evicted (their builder will install) *)
let enforce_capacity_locked t =
  if t.capacity > 0 then begin
    let ready_count () =
      Hashtbl.fold
        (fun _ s n -> match s with Ready _ -> n + 1 | Building -> n)
        t.table 0
    in
    while ready_count () > t.capacity do
      let victim = ref None in
      Hashtbl.iter
        (fun k s ->
          match s with
          | Building -> ()
          | Ready e -> (
            match !victim with
            | Some (_, tick) when tick <= e.tick -> ()
            | _ -> victim := Some (k, e.tick)))
        t.table;
      match !victim with
      | None -> assert false (* ready_count > capacity >= 1 *)
      | Some (k, _) ->
        Hashtbl.remove t.table k;
        t.evictions <- t.evictions + 1
    done
  end

let find t key =
  Mutex.lock t.lock;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some (Ready e) ->
      t.hits <- t.hits + 1;
      touch t e;
      Some e.value
    | Some Building | None ->
      t.misses <- t.misses + 1;
      None
  in
  Mutex.unlock t.lock;
  r

let remove t key =
  Mutex.lock t.lock;
  (match Hashtbl.find_opt t.table key with
  | Some (Ready _) -> Hashtbl.remove t.table key
  | Some Building | None -> ());
  Mutex.unlock t.lock

let find_or_build t key build =
  Mutex.lock t.lock;
  let rec claim () =
    match Hashtbl.find_opt t.table key with
    | Some (Ready e) ->
      t.hits <- t.hits + 1;
      touch t e;
      `Hit e.value
    | Some Building ->
      (* someone else is building this key; wait and re-examine — if
         their build fails the slot disappears and we take over *)
      Condition.wait t.cond t.lock;
      claim ()
    | None ->
      t.misses <- t.misses + 1;
      Hashtbl.replace t.table key Building;
      `Build
  in
  match claim () with
  | `Hit v ->
    Mutex.unlock t.lock;
    v
  | `Build -> (
    Mutex.unlock t.lock;
    match build () with
    | v ->
      Mutex.lock t.lock;
      t.builds <- t.builds + 1;
      t.tick <- t.tick + 1;
      Hashtbl.replace t.table key (Ready { value = v; tick = t.tick });
      enforce_capacity_locked t;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      v
    | exception e ->
      Mutex.lock t.lock;
      t.failures <- t.failures + 1;
      Hashtbl.remove t.table key;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      raise e)

let registered_stats () =
  Mutex.lock registry_lock;
  let fs = !registry in
  Mutex.unlock registry_lock;
  List.map (fun f -> f ()) fs

let clear_registered () =
  Mutex.lock registry_lock;
  let fs = !registry_clear in
  Mutex.unlock registry_lock;
  List.fold_left (fun acc f -> acc + f ()) 0 fs
