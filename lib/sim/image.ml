type pop =
  | Preg of int
  | Pimm of int

type builtin = Bgetchar | Bputchar | Bprint_int | Bexit

type pinsn =
  | Pmov of int * pop
  | Punop of Mir.Insn.unop * int * pop
  | Pbinop of Mir.Insn.binop * int * pop * pop
  | Pload of int * int * pop
  | Pstore of int * pop * pop
  | Pcmp of pop * pop
  | Pcall of int * int * pop array
  | Pbuiltin of int * builtin * pop array
  | Pnop
  | Pprofile_range of int * int
  | Pprofile_comb of int
  | Ptrap_insn of string

type pterm =
  | Pbr of Mir.Cond.t * int * int * bool
  | Pjmp of int * bool
  | Pjtab of int * int array
  | Pret of pop option
  | Ptrap_term of string
  | Praise_term of exn

type pblock = {
  pb_label : string;
  pb_insns : pinsn array;
  pb_term : pterm;
  pb_delay : pinsn option;
  pb_annul : bool;
  pb_site : int;
}

type pfunc = {
  pf_name : string;
  pf_params : int array;
  pf_nregs : int;
  pf_blocks : pblock array;
  pf_unknown : string array;
}

type global = {
  g_name : string;
  g_size : int;
  g_init : int array option;
}

type t = {
  funcs : pfunc array;
  main_id : int;
  globals : global array;
  nsites : int;
}

(* highest register id actually referenced, for register files of
   hand-built functions whose [next_reg] counter was never advanced *)
let max_reg_of (fn : Mir.Func.t) =
  let m = ref fn.Mir.Func.next_reg in
  let see r = m := max !m (Mir.Reg.to_int r + 1) in
  List.iter see fn.Mir.Func.params;
  List.iter
    (fun (b : Mir.Block.t) ->
      let see_insn i =
        List.iter see (Mir.Insn.defs i);
        List.iter see (Mir.Insn.uses i)
      in
      List.iter see_insn b.Mir.Block.insns;
      (match b.Mir.Block.term.Mir.Block.delay with
      | Some i -> see_insn i
      | None -> ());
      match b.Mir.Block.term.Mir.Block.kind with
      | Mir.Block.Switch (r, _, _) | Mir.Block.Jtab (r, _) -> see r
      | Mir.Block.Ret (Some (Mir.Operand.Reg r)) -> see r
      | Mir.Block.Br _ | Mir.Block.Jmp _ | Mir.Block.Ret _ -> ())
    fn.Mir.Func.blocks;
  !m

let pop_of = function
  | Mir.Operand.Reg r -> Preg (Mir.Reg.to_int r)
  | Mir.Operand.Imm n -> Pimm n

let decode_func ~fid_of ~slot_of ~next_site (fn : Mir.Func.t) =
  let blocks = Array.of_list fn.Mir.Func.blocks in
  let n = Array.length blocks in
  let labels = Array.map (fun (b : Mir.Block.t) -> b.Mir.Block.label) blocks in
  (* label -> index, last definition wins, matching the reference
     interpreter's Hashtbl.replace over the layout *)
  let index_of = Hashtbl.create (max 16 n) in
  Array.iteri (fun i l -> Hashtbl.replace index_of l i) labels;
  let unknown = ref [] and n_unknown = ref 0 in
  let unknown_ids : (string, int) Hashtbl.t = Hashtbl.create 4 in
  let resolve label =
    match Hashtbl.find_opt index_of label with
    | Some i -> i
    | None -> (
      match Hashtbl.find_opt unknown_ids label with
      | Some k -> -k - 1
      | None ->
        let k = !n_unknown in
        incr n_unknown;
        unknown := label :: !unknown;
        Hashtbl.replace unknown_ids label k;
        -k - 1)
  in
  let decode_insn (i : Mir.Insn.t) =
    match i with
    | Mir.Insn.Mov (r, o) -> Pmov (Mir.Reg.to_int r, pop_of o)
    | Mir.Insn.Unop (op, r, o) -> Punop (op, Mir.Reg.to_int r, pop_of o)
    | Mir.Insn.Binop (op, r, a, b) ->
      Pbinop (op, Mir.Reg.to_int r, pop_of a, pop_of b)
    | Mir.Insn.Load (r, sym, idx) -> (
      match Hashtbl.find_opt slot_of sym with
      | Some slot -> Pload (Mir.Reg.to_int r, slot, pop_of idx)
      | None -> Ptrap_insn (Printf.sprintf "access to unknown global %s" sym))
    | Mir.Insn.Store (sym, idx, v) -> (
      match Hashtbl.find_opt slot_of sym with
      | Some slot -> Pstore (slot, pop_of idx, pop_of v)
      | None -> Ptrap_insn (Printf.sprintf "access to unknown global %s" sym))
    | Mir.Insn.Cmp (a, b) -> Pcmp (pop_of a, pop_of b)
    | Mir.Insn.Call (dst, name, args) -> (
      let d = match dst with Some r -> Mir.Reg.to_int r | None -> -1 in
      let pargs = Array.of_list (List.map pop_of args) in
      let nargs = Array.length pargs in
      match name, nargs with
      | "getchar", 0 -> Pbuiltin (d, Bgetchar, pargs)
      | "putchar", 1 -> Pbuiltin (d, Bputchar, pargs)
      | "print_int", 1 -> Pbuiltin (d, Bprint_int, pargs)
      | "exit", 1 -> Pbuiltin (d, Bexit, pargs)
      | ("getchar" | "putchar" | "print_int" | "exit"), _ ->
        Ptrap_insn (Printf.sprintf "builtin %s: wrong number of arguments" name)
      | _, _ -> (
        match Hashtbl.find_opt fid_of name with
        | Some fid -> Pcall (d, fid, pargs)
        | None -> Ptrap_insn (Printf.sprintf "call to unknown function %s" name)))
    | Mir.Insn.Nop -> Pnop
    | Mir.Insn.Profile_range (id, r) -> Pprofile_range (id, Mir.Reg.to_int r)
    | Mir.Insn.Profile_comb id -> Pprofile_comb id
  in
  let decode_term i (b : Mir.Block.t) =
    (* the layout fall-through checks mirror the reference interpreter,
       which compares the *label* of the next block in the layout *)
    let falls_to l = i + 1 < n && String.equal labels.(i + 1) l in
    match b.Mir.Block.term.Mir.Block.kind with
    | Mir.Block.Br (cond, taken_l, not_taken_l) ->
      Pbr (cond, resolve taken_l, resolve not_taken_l, falls_to not_taken_l)
    | Mir.Block.Jmp l -> Pjmp (resolve l, falls_to l)
    | Mir.Block.Switch _ ->
      Ptrap_term
        (Printf.sprintf "unlowered switch reached the simulator (%s)"
           b.Mir.Block.label)
    | Mir.Block.Jtab (r, id) -> (
      match Mir.Func.jtab fn id with
      | table -> Pjtab (Mir.Reg.to_int r, Array.map resolve table)
      | exception e -> Praise_term e)
    | Mir.Block.Ret v -> Pret (Option.map pop_of v)
  in
  let pblocks =
    Array.mapi
      (fun i (b : Mir.Block.t) ->
        let site = !next_site in
        incr next_site;
        {
          pb_label = b.Mir.Block.label;
          pb_insns = Array.of_list (List.map decode_insn b.Mir.Block.insns);
          pb_term = decode_term i b;
          pb_delay = Option.map decode_insn b.Mir.Block.term.Mir.Block.delay;
          pb_annul = b.Mir.Block.term.Mir.Block.annul;
          pb_site = site;
        })
      blocks
  in
  {
    pf_name = fn.Mir.Func.name;
    pf_params =
      Array.of_list (List.map Mir.Reg.to_int fn.Mir.Func.params);
    pf_nregs = max_reg_of fn;
    pf_blocks = pblocks;
    pf_unknown = Array.of_list (List.rev !unknown);
  }

let build (p : Mir.Program.t) =
  let globals =
    Array.of_list
      (List.map
         (fun (g : Mir.Program.global) ->
           {
             g_name = g.Mir.Program.gname;
             g_size = g.Mir.Program.size;
             g_init = g.Mir.Program.init;
           })
         p.Mir.Program.globals)
  in
  let slot_of = Hashtbl.create (max 16 (Array.length globals)) in
  Array.iteri (fun i g -> Hashtbl.replace slot_of g.g_name i) globals;
  let fns = Array.of_list p.Mir.Program.funcs in
  let fid_of = Hashtbl.create (max 16 (Array.length fns)) in
  Array.iteri
    (fun i (f : Mir.Func.t) -> Hashtbl.replace fid_of f.Mir.Func.name i)
    fns;
  let next_site = ref 0 in
  let funcs = Array.map (decode_func ~fid_of ~slot_of ~next_site) fns in
  let main_id =
    match Hashtbl.find_opt fid_of "main" with Some i -> i | None -> -1
  in
  { funcs; main_id; globals; nsites = !next_site }

(* site numbers are assigned densely in program order, so the inverse
   map is a direct fill — no re-lowering and no sort *)
let sites (t : t) =
  let out = Array.make t.nsites ("", "") in
  Array.iter
    (fun f ->
      Array.iter
        (fun b -> out.(b.pb_site) <- (f.pf_name, b.pb_label))
        f.pf_blocks)
    t.funcs;
  out

let find_func (t : t) name =
  let n = Array.length t.funcs in
  let rec go i =
    if i >= n then None
    else if String.equal t.funcs.(i).pf_name name then Some t.funcs.(i)
    else go (i + 1)
  in
  go 0

let site_of (t : t) ~func ~label =
  match find_func t func with
  | None -> None
  | Some f ->
    (* last definition wins, matching the interpreters' label maps *)
    let site = ref (-1) in
    Array.iter
      (fun b -> if String.equal b.pb_label label then site := b.pb_site)
      f.pf_blocks;
    if !site < 0 then None else Some !site
