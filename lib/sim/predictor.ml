type t = {
  history_bits : int;
  counter_bits : int;
  entries : int;
  table : int array;
  init_state : int;
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make ~history_bits ~counter_bits ~entries =
  if history_bits < 0 || history_bits > 16 then
    invalid_arg "Predictor.make: history_bits out of range";
  if counter_bits < 1 || counter_bits > 8 then
    invalid_arg "Predictor.make: counter_bits out of range";
  if not (is_power_of_two entries) then
    invalid_arg "Predictor.make: entries must be a power of two";
  let init_state = (1 lsl (counter_bits - 1)) - 1 in
  {
    history_bits;
    counter_bits;
    entries;
    table = Array.make entries init_state;
    init_state;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

(* the index is masked by [entries - 1] (a power of two), so table
   accesses cannot go out of bounds *)
let[@inline] access t ~site ~taken =
  let index = (site lxor t.history) land (t.entries - 1) in
  let counter = Array.unsafe_get t.table index in
  let predict_taken = counter >= 1 lsl (t.counter_bits - 1) in
  t.lookups <- t.lookups + 1;
  if predict_taken <> taken then t.mispredicts <- t.mispredicts + 1;
  let max_counter = (1 lsl t.counter_bits) - 1 in
  Array.unsafe_set t.table index
    (if taken then min max_counter (counter + 1) else max 0 (counter - 1));
  if t.history_bits > 0 then
    t.history <-
      ((t.history lsl 1) lor (if taken then 1 else 0))
      land ((1 lsl t.history_bits) - 1)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let reset t =
  Array.fill t.table 0 t.entries t.init_state;
  t.history <- 0;
  t.lookups <- 0;
  t.mispredicts <- 0

let describe t =
  Printf.sprintf "(%d,%d)x%d" t.history_bits t.counter_bits t.entries

(* ------------------------------------------------------------------ *)
(* Predictor banks: a prebuilt flat array of predictors driven with no *)
(* per-event allocation or list traversal.                             *)
(* ------------------------------------------------------------------ *)

type bank = {
  bank_keys : (int * int * int) array;
  bank_preds : t array;
}

let bank keys =
  let bank_keys = Array.of_list keys in
  let bank_preds =
    Array.map
      (fun (h, c, e) -> make ~history_bits:h ~counter_bits:c ~entries:e)
      bank_keys
  in
  { bank_keys; bank_preds }

let bank_access b ~site ~taken =
  let preds = b.bank_preds in
  for i = 0 to Array.length preds - 1 do
    access (Array.unsafe_get preds i) ~site ~taken
  done

(* Batched delivery: fold [n] packed events ([(site lsl 1) lor taken],
   oldest first) into one predictor.  Transposing the loop — one
   predictor at a time over the whole batch instead of the whole bank
   per event — keeps each predictor's table, history and counts hot in
   cache for the duration of the batch; since a predictor's state
   evolves only through its own in-order event fold, the final state is
   byte-identical to streaming delivery via {!access}.  The inner loops
   are specialized for the common predictor shapes of the paper's
   sweep: 1-bit counters (store the outcome), wider saturating
   counters, and history-indexed tables. *)
let drain_pred (p : t) buf n =
  let mask = p.entries - 1 in
  let table = p.table in
  let shift = p.counter_bits - 1 in
  let maxc = (1 lsl p.counter_bits) - 1 in
  let misp = ref 0 in
  if p.history_bits = 0 then begin
    if p.counter_bits = 1 then
      for j = 0 to n - 1 do
        let e = Array.unsafe_get buf j in
        let taken = e land 1 in
        let index = (e lsr 1) land mask in
        let counter = Array.unsafe_get table index in
        misp := !misp + (counter lxor taken);
        Array.unsafe_set table index taken
      done
    else
      for j = 0 to n - 1 do
        let e = Array.unsafe_get buf j in
        let taken = e land 1 in
        let index = (e lsr 1) land mask in
        let counter = Array.unsafe_get table index in
        misp := !misp + ((counter lsr shift) lxor taken);
        (* saturate with int comparisons: the polymorphic min/max would
           cost a generic-compare call per event *)
        let counter = counter + taken + taken - 1 in
        let counter =
          if counter > maxc then maxc else if counter < 0 then 0 else counter
        in
        Array.unsafe_set table index counter
      done
  end
  else begin
    let hmask = (1 lsl p.history_bits) - 1 in
    let hist = ref p.history in
    for j = 0 to n - 1 do
      let e = Array.unsafe_get buf j in
      let taken = e land 1 in
      let index = ((e lsr 1) lxor !hist) land mask in
      let counter = Array.unsafe_get table index in
      misp := !misp + ((counter lsr shift) lxor taken);
      let counter = counter + taken + taken - 1 in
      let counter =
        if counter > maxc then maxc else if counter < 0 then 0 else counter
      in
      Array.unsafe_set table index counter;
      hist := ((!hist lsl 1) lor taken) land hmask
    done;
    p.history <- !hist
  end;
  p.lookups <- p.lookups + n;
  p.mispredicts <- p.mispredicts + !misp

let bank_drain b buf n =
  let preds = b.bank_preds in
  for i = 0 to Array.length preds - 1 do
    drain_pred (Array.unsafe_get preds i) buf n
  done

let bank_reset b = Array.iter reset b.bank_preds

let bank_absorb ~into src =
  if Array.length into.bank_keys <> Array.length src.bank_keys then
    invalid_arg "Predictor.bank_absorb: bank shapes differ";
  Array.iteri
    (fun i (sp : t) ->
      let dp = into.bank_preds.(i) in
      if into.bank_keys.(i) <> src.bank_keys.(i) then
        invalid_arg "Predictor.bank_absorb: bank keys differ";
      dp.lookups <- dp.lookups + sp.lookups;
      dp.mispredicts <- dp.mispredicts + sp.mispredicts;
      sp.lookups <- 0;
      sp.mispredicts <- 0)
    src.bank_preds

let bank_add_tallies b tallies =
  if List.length tallies <> Array.length b.bank_keys then
    invalid_arg "Predictor.bank_add_tallies: bank shapes differ";
  List.iteri
    (fun i (key, (lk, mis)) ->
      if b.bank_keys.(i) <> key then
        invalid_arg "Predictor.bank_add_tallies: bank keys differ";
      if lk < 0 || mis < 0 then
        invalid_arg "Predictor.bank_add_tallies: negative tally";
      let p = b.bank_preds.(i) in
      p.lookups <- p.lookups + lk;
      p.mispredicts <- p.mispredicts + mis)
    tallies

let bank_size b = Array.length b.bank_preds

let bank_mispredicts b =
  Array.to_list
    (Array.map2
       (fun key p -> (key, mispredicts p))
       b.bank_keys b.bank_preds)

let bank_lookups b =
  Array.to_list
    (Array.map2 (fun key p -> (key, lookups p)) b.bank_keys b.bank_preds)

(* Branch-event sink: what an execution backend feeds each conditional
   branch outcome into.  [Sink_bank] is the allocation-free fast path
   the measure stage uses; [Sink_fun] keeps the old closure protocol
   available for traces and profile-layout counting. *)
type sink =
  | Sink_none
  | Sink_bank of bank
  | Sink_fun of (site:int -> taken:bool -> unit)

let sink_of_bank b = Sink_bank b

let sink_event s ~site ~taken =
  match s with
  | Sink_none -> ()
  | Sink_bank b -> bank_access b ~site ~taken
  | Sink_fun f -> f ~site ~taken
