type t = {
  history_bits : int;
  counter_bits : int;
  entries : int;
  table : int array;
  init_state : int;
  mutable history : int;
  mutable lookups : int;
  mutable mispredicts : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let make ~history_bits ~counter_bits ~entries =
  if history_bits < 0 || history_bits > 16 then
    invalid_arg "Predictor.make: history_bits out of range";
  if counter_bits < 1 || counter_bits > 8 then
    invalid_arg "Predictor.make: counter_bits out of range";
  if not (is_power_of_two entries) then
    invalid_arg "Predictor.make: entries must be a power of two";
  let init_state = (1 lsl (counter_bits - 1)) - 1 in
  {
    history_bits;
    counter_bits;
    entries;
    table = Array.make entries init_state;
    init_state;
    history = 0;
    lookups = 0;
    mispredicts = 0;
  }

(* the index is masked by [entries - 1] (a power of two), so table
   accesses cannot go out of bounds *)
let[@inline] access t ~site ~taken =
  let index = (site lxor t.history) land (t.entries - 1) in
  let counter = Array.unsafe_get t.table index in
  let predict_taken = counter >= 1 lsl (t.counter_bits - 1) in
  t.lookups <- t.lookups + 1;
  if predict_taken <> taken then t.mispredicts <- t.mispredicts + 1;
  let max_counter = (1 lsl t.counter_bits) - 1 in
  Array.unsafe_set t.table index
    (if taken then min max_counter (counter + 1) else max 0 (counter - 1));
  if t.history_bits > 0 then
    t.history <-
      ((t.history lsl 1) lor (if taken then 1 else 0))
      land ((1 lsl t.history_bits) - 1)

let lookups t = t.lookups
let mispredicts t = t.mispredicts

let reset t =
  Array.fill t.table 0 t.entries t.init_state;
  t.history <- 0;
  t.lookups <- 0;
  t.mispredicts <- 0

let describe t =
  Printf.sprintf "(%d,%d)x%d" t.history_bits t.counter_bits t.entries

(* ------------------------------------------------------------------ *)
(* Predictor banks: a prebuilt flat array of predictors driven with no *)
(* per-event allocation or list traversal.                             *)
(* ------------------------------------------------------------------ *)

type bank = {
  bank_keys : (int * int * int) array;
  bank_preds : t array;
}

let bank keys =
  let bank_keys = Array.of_list keys in
  let bank_preds =
    Array.map
      (fun (h, c, e) -> make ~history_bits:h ~counter_bits:c ~entries:e)
      bank_keys
  in
  { bank_keys; bank_preds }

let bank_access b ~site ~taken =
  let preds = b.bank_preds in
  for i = 0 to Array.length preds - 1 do
    access (Array.unsafe_get preds i) ~site ~taken
  done

let bank_reset b = Array.iter reset b.bank_preds

let bank_size b = Array.length b.bank_preds

let bank_mispredicts b =
  Array.to_list
    (Array.map2
       (fun key p -> (key, mispredicts p))
       b.bank_keys b.bank_preds)

let bank_lookups b =
  Array.to_list
    (Array.map2 (fun key p -> (key, lookups p)) b.bank_keys b.bank_preds)

(* Branch-event sink: what an execution backend feeds each conditional
   branch outcome into.  [Sink_bank] is the allocation-free fast path
   the measure stage uses; [Sink_fun] keeps the old closure protocol
   available for traces and profile-layout counting. *)
type sink =
  | Sink_none
  | Sink_bank of bank
  | Sink_fun of (site:int -> taken:bool -> unit)

let sink_of_bank b = Sink_bank b

let sink_event s ~site ~taken =
  match s with
  | Sink_none -> ()
  | Sink_bank b -> bank_access b ~site ~taken
  | Sink_fun f -> f ~site ~taken
