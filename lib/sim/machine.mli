(** The MIR interpreter.

    Executes a program deterministically against a string of input,
    counting dynamic instructions exactly as the assembled SPARC-like code
    would execute them: conditional branches and unconditional transfers
    carry delay slots (a filled slot executes its instruction, an unfilled
    one executes a counted nop), a not-taken branch whose fall-through
    successor is not next in the layout executes an extra jump, and a jump
    to the next block in the layout costs nothing.

    Built-in functions: [getchar] (reads the input string, -1 at end),
    [putchar], [print_int] (decimal), [exit].  [puts]/[print_str] are
    expanded by the front end and never reach the simulator. *)

exception Trap of string
(** Runtime error: division by zero, out-of-bounds access, unknown
    function, call-depth or fuel exhaustion, unlowered switch.  Equal to
    {!Runtime.Trap}, shared by every execution backend. *)

exception Cancelled
(** The run was cooperatively cancelled via {!config.cancel} (equal to
    {!Runtime.Cancelled}); raised at a basic-block boundary by every
    backend. *)

type config = Runtime.config = {
  fuel : int;        (** maximum dynamic instructions before trapping *)
  max_depth : int;   (** maximum call depth *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation flag, polled once per executed block
          (watchdog deadline hook; [None] = never cancelled) *)
}

val default_config : config

type result = Runtime.result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}

val run :
  ?config:config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  ?backend:[ `Predecoded | `Reference | `Compiled | `Native ] ->
  Mir.Program.t ->
  input:string ->
  result
(** [run p ~input] executes [p] from [main].  [on_branch] is called for
    every executed conditional branch with a stable site number (assigned
    in program order) and the outcome; use it to drive {!Predictor}s.
    [on_block] is called on entry to every basic block (a control-flow
    trace).  Raises {!Trap} on runtime errors.

    [backend] selects the execution engine (default [`Predecoded]):
    [`Reference] walks the MIR directly and is kept as the oracle the
    fast paths are cross-checked against; [`Predecoded] lowers the
    program through {!Image.build} and interprets the label-free,
    hashtable-free image; [`Compiled] additionally compiles each image
    block to a chain of OCaml closures ({!Compiled}), eliminating
    per-instruction dispatch; [`Native] generates OCaml source for the
    image, compiles it out of process and dynlinks the result
    ({!Native} — raises {!Native.Unavailable} when no toolchain is
    present, so callers that cannot degrade should check
    {!Native.available} first).  All four produce identical output,
    exit codes, counters and branch-site event streams. *)

val run_reference :
  ?config:config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  Mir.Program.t ->
  input:string ->
  result
(** The MIR-walking reference interpreter ([run ~backend:`Reference]). *)

val run_image :
  ?config:config ->
  ?profile:Profile.t ->
  ?on_branch:(site:int -> taken:bool -> unit) ->
  ?on_block:(func:string -> label:string -> unit) ->
  Image.t ->
  input:string ->
  result
(** Execute a pre-built {!Image.t}.  Use this to amortize the one-time
    lowering across repeated runs of the same program (e.g. wall-clock
    benchmarking); [run p] is [run_image (Image.build p)]. *)

val site_of : Mir.Program.t -> func:string -> label:string -> int
(** The site number the machine assigns to the branch terminating the
    given block (for tests). *)

val sites : Mir.Program.t -> (string * string) array
(** [(function, label)] for every block, indexed by site number — the
    inverse of {!site_of}, for consumers of [on_branch] events that need
    to attribute counts to blocks (e.g. profile-guided layout). *)
