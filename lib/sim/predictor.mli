(** (m, n) branch predictors.

    An [(m, n)] predictor keeps [entries] n-bit saturating counters indexed
    by the branch site number XORed with m bits of global branch history,
    as in the paper's Tables 5 and 6 ((0,1) and (0,2) predictors with
    32..2048 entries; the SPARC Ultra 1 uses a (0,2) predictor with 2048
    entries). *)

type t

val make : history_bits:int -> counter_bits:int -> entries:int -> t
(** [entries] must be a power of two.  Counters start in the weakly
    not-taken state. *)

val access : t -> site:int -> taken:bool -> unit
(** Record one executed conditional branch: predict, compare with the
    outcome, update the counter and history. *)

val lookups : t -> int
val mispredicts : t -> int
val reset : t -> unit
val describe : t -> string
(** e.g. ["(0,2)x2048"]. *)

(** {2 Banks}

    A bank is a prebuilt array of predictors keyed by their
    [(history_bits, counter_bits, entries)] configuration, updated for
    every branch event with a flat array sweep — no allocation and no
    assoc-list traversal per event.  The measure stage builds one bank
    per run instead of dispatching over a [(key, predictor) list]. *)

type bank

val bank : (int * int * int) list -> bank
(** [bank keys] makes one fresh predictor per [(m, n, entries)] key. *)

val bank_access : bank -> site:int -> taken:bool -> unit
(** Feed one branch outcome to every predictor in the bank. *)

val bank_drain : bank -> int array -> int -> unit
(** [bank_drain b buf n] feeds the first [n] packed events of [buf] —
    [(site lsl 1) lor (if taken then 1 else 0)], oldest first — to
    every predictor, sweeping one predictor at a time over the whole
    batch.  Equivalent to [n] calls of {!bank_access} in order (each
    predictor folds its own event stream in sequence either way), but
    much cheaper when the bank is wide: the native backend buffers
    branch events in generated code and drains here. *)

val bank_reset : bank -> unit

val bank_absorb : into:bank -> bank -> unit
(** [bank_absorb ~into shard] adds [shard]'s lookup and mispredict
    tallies into [into] (same key list, checked) and zeroes them in
    [shard], so per-domain banks can be merged into a global summary
    without double counting.  Prediction state (history registers,
    counter tables) stays in the shard: it is inherently per-stream and
    is not transferred.  Raises [Invalid_argument] on shape mismatch. *)

val bank_add_tallies : bank -> ((int * int * int) * (int * int)) list -> unit
(** [bank_add_tallies b tallies] adds persisted [(lookups, mispredicts)]
    tallies (as returned by {!bank_lookups} zipped with
    {!bank_mispredicts}) into [b] — the restore half of durable shadow
    telemetry: a restarted daemon folds the tallies its predecessor
    accumulated into its fresh global bank.  The key list must match the
    bank's exactly.  Raises [Invalid_argument] on shape mismatch or a
    negative tally. *)

val bank_size : bank -> int

val bank_mispredicts : bank -> ((int * int * int) * int) list
(** Per-key mispredict counts, in the key order given to {!bank}. *)

val bank_lookups : bank -> ((int * int * int) * int) list

(** {2 Sinks}

    The branch-event consumer an execution backend is run with.  The
    closure-compiled backend threads the sink directly into its branch
    terminators. *)

type sink =
  | Sink_none              (** discard branch events *)
  | Sink_bank of bank      (** drive a predictor bank (allocation-free) *)
  | Sink_fun of (site:int -> taken:bool -> unit)
      (** the classic [on_branch] closure protocol *)

val sink_of_bank : bank -> sink

val sink_event : sink -> site:int -> taken:bool -> unit
(** Deliver one event (what the compiled backend inlines per branch). *)
