(** Pre-decoded execution image.

    A one-time lowering of a {!Mir.Program.t} into flat arrays for the
    simulator's fast path: every label becomes an integer block index,
    every global symbol an integer memory slot, every function an
    integer id, every operand a pre-resolved register index or
    immediate, and every builtin a tag — so the interpreter main loop
    performs no hashtable lookups, no string comparisons and no list
    traversals.  The MIR-walking interpreter in {!Machine} is kept as a
    reference oracle; [Machine.run_image] executes images built here
    with identical observable behaviour (output, exit code, counters,
    branch-site event stream).

    Decoding never fails: references that the reference interpreter
    would only fault on at execution time (unknown callees, unknown
    globals, unknown labels, unlowered switches, bad jump-table ids)
    are lowered to trap thunks that raise the same error if — and only
    if — they are actually executed. *)

type pop =
  | Preg of int  (** register slot *)
  | Pimm of int  (** immediate *)

type builtin = Bgetchar | Bputchar | Bprint_int | Bexit

type pinsn =
  | Pmov of int * pop
  | Punop of Mir.Insn.unop * int * pop
  | Pbinop of Mir.Insn.binop * int * pop * pop
  | Pload of int * int * pop  (** dst, global slot, index *)
  | Pstore of int * pop * pop  (** global slot, index, value *)
  | Pcmp of pop * pop
  | Pcall of int * int * pop array
      (** dst register (-1 = none), callee function id, arguments *)
  | Pbuiltin of int * builtin * pop array
      (** dst register (-1 = none); arity is checked at decode time *)
  | Pnop
  | Pprofile_range of int * int  (** sequence id, register slot *)
  | Pprofile_comb of int
  | Ptrap_insn of string  (** decode-time failure; traps when executed *)

(** Block targets are indices into [pf_blocks]; a negative target [-k-1]
    names entry [k] of [pf_unknown] and traps when jumped to. *)
type pterm =
  | Pbr of Mir.Cond.t * int * int * bool
      (** taken target, not-taken target, and whether the not-taken
          target falls through in the layout (no synthetic jump) *)
  | Pjmp of int * bool  (** target, falls-through (costs nothing) *)
  | Pjtab of int * int array  (** index register, table of block targets *)
  | Pret of pop option
  | Ptrap_term of string  (** e.g. an unlowered switch *)
  | Praise_term of exn  (** re-raised verbatim (bad jump-table id) *)

type pblock = {
  pb_label : string;  (** for [on_block] and trap messages only *)
  pb_insns : pinsn array;
  pb_term : pterm;
  pb_delay : pinsn option;
  pb_annul : bool;
  pb_site : int;  (** same numbering as {!Machine.site_of} *)
}

type pfunc = {
  pf_name : string;
  pf_params : int array;  (** register slots of the parameters *)
  pf_nregs : int;
  pf_blocks : pblock array;
  pf_unknown : string array;  (** unknown-label table for trap messages *)
}

type global = {
  g_name : string;
  g_size : int;
  g_init : int array option;
}

type t = {
  funcs : pfunc array;
  main_id : int;  (** index of [main], or -1 *)
  globals : global array;  (** indexed by memory slot *)
  nsites : int;
}

val build : Mir.Program.t -> t
(** Snapshot-lower a program.  The image does not alias the program's
    mutable structure: later mutation of the MIR does not affect it. *)

val max_reg_of : Mir.Func.t -> int
(** Highest register id referenced plus one (register-file size), also
    used by the reference interpreter. *)

val sites : t -> (string * string) array
(** [(function, label)] of every block, indexed by site number — derived
    from the already-built image, so consumers that hold an image (the
    profile-layout pass, tests) never pay a second whole-program
    lowering just to name branch sites. *)

val find_func : t -> string -> pfunc option
(** Look up a function by name (linear scan; not for hot paths). *)

val site_of : t -> func:string -> label:string -> int option
(** The site number of the branch terminating the given block, or
    [None] if the function or label does not exist. *)
