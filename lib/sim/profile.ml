type range_seq = {
  bounds : (int * int) array;
  counts : int array;
  mutable executions : int;
}

type comb_seq = {
  conds : (Mir.Cond.t * Mir.Operand.t * Mir.Operand.t) array;
  comb_counts : int array;
  mutable comb_executions : int;
}

type t = {
  range_seqs : (int, range_seq) Hashtbl.t;
  comb_seqs : (int, comb_seq) Hashtbl.t;
}

let make () = { range_seqs = Hashtbl.create 16; comb_seqs = Hashtbl.create 16 }

let register_range_seq t id bounds =
  let seq =
    { bounds; counts = Array.make (Array.length bounds) 0; executions = 0 }
  in
  Hashtbl.replace t.range_seqs id seq;
  seq

let register_comb_seq t id conds =
  if Array.length conds > 16 then
    invalid_arg "Profile.register_comb_seq: too many conditions";
  let seq =
    {
      conds;
      comb_counts = Array.make (1 lsl Array.length conds) 0;
      comb_executions = 0;
    }
  in
  Hashtbl.replace t.comb_seqs id seq;
  seq

let find_range_seq t id = Hashtbl.find_opt t.range_seqs id
let find_comb_seq t id = Hashtbl.find_opt t.comb_seqs id

(* binary search for the range containing v *)
let range_index bounds v =
  let lo = ref 0 and hi = ref (Array.length bounds - 1) in
  let found = ref (-1) in
  while !found < 0 && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let l, h = bounds.(mid) in
    if v < l then hi := mid - 1
    else if v > h then lo := mid + 1
    else found := mid
  done;
  !found

let record_range t id v =
  match Hashtbl.find_opt t.range_seqs id with
  | None -> invalid_arg (Printf.sprintf "Profile.record_range: unknown id %d" id)
  | Some seq ->
    let idx = range_index seq.bounds v in
    if idx < 0 then
      invalid_arg
        (Printf.sprintf "Profile.record_range: value %d not covered (seq %d)" v id);
    seq.counts.(idx) <- seq.counts.(idx) + 1;
    seq.executions <- seq.executions + 1

(* a shard shares the other table's descriptors (bounds/conds arrays
   are immutable and safe to alias) but gets private zeroed counters *)
let copy_shape src =
  let t = make () in
  Hashtbl.iter
    (fun id (s : range_seq) ->
      Hashtbl.replace t.range_seqs id
        {
          bounds = s.bounds;
          counts = Array.make (Array.length s.counts) 0;
          executions = 0;
        })
    src.range_seqs;
  Hashtbl.iter
    (fun id (s : comb_seq) ->
      Hashtbl.replace t.comb_seqs id
        {
          conds = s.conds;
          comb_counts = Array.make (Array.length s.comb_counts) 0;
          comb_executions = 0;
        })
    src.comb_seqs;
  t

let absorb ~into src =
  let moved = ref 0 in
  Hashtbl.iter
    (fun id (s : range_seq) ->
      match Hashtbl.find_opt into.range_seqs id with
      | None -> ()
      | Some dst ->
        Array.iteri
          (fun i c ->
            if c <> 0 then begin
              dst.counts.(i) <- dst.counts.(i) + c;
              s.counts.(i) <- 0;
              moved := !moved + c
            end)
          s.counts;
        dst.executions <- dst.executions + s.executions;
        s.executions <- 0)
    src.range_seqs;
  Hashtbl.iter
    (fun id (s : comb_seq) ->
      match Hashtbl.find_opt into.comb_seqs id with
      | None -> ()
      | Some dst ->
        Array.iteri
          (fun i c ->
            if c <> 0 then begin
              dst.comb_counts.(i) <- dst.comb_counts.(i) + c;
              s.comb_counts.(i) <- 0;
              moved := !moved + c
            end)
          s.comb_counts;
        dst.comb_executions <- dst.comb_executions + s.comb_executions;
        s.comb_executions <- 0)
    src.comb_seqs;
  !moved

let total_executions t =
  Hashtbl.fold (fun _ (s : range_seq) acc -> acc + s.executions) t.range_seqs 0
  + Hashtbl.fold
      (fun _ (s : comb_seq) acc -> acc + s.comb_executions)
      t.comb_seqs 0

(* raw counter export/import: the durable-state layer persists counts
   by sequence id and re-registers descriptors by re-detecting the
   program, so only the counters travel *)
let counters t =
  let ranges =
    Hashtbl.fold
      (fun id (s : range_seq) acc ->
        (id, Array.copy s.counts, s.executions) :: acc)
      t.range_seqs []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  let combs =
    Hashtbl.fold
      (fun id (s : comb_seq) acc ->
        (id, Array.copy s.comb_counts, s.comb_executions) :: acc)
      t.comb_seqs []
    |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
  in
  (ranges, combs)

let set_counters t ~ranges ~combs =
  let applied = ref 0 in
  List.iter
    (fun (id, counts, executions) ->
      match Hashtbl.find_opt t.range_seqs id with
      | Some dst when Array.length dst.counts = Array.length counts ->
        Array.blit counts 0 dst.counts 0 (Array.length counts);
        dst.executions <- executions;
        incr applied
      | Some _ | None -> ())
    ranges;
  List.iter
    (fun (id, counts, executions) ->
      match Hashtbl.find_opt t.comb_seqs id with
      | Some dst when Array.length dst.comb_counts = Array.length counts ->
        Array.blit counts 0 dst.comb_counts 0 (Array.length counts);
        dst.comb_executions <- executions;
        incr applied
      | Some _ | None -> ())
    combs;
  !applied

let eval_operand read_reg = function
  | Mir.Operand.Reg r -> read_reg r
  | Mir.Operand.Imm n -> n

let record_comb t id ~read_reg =
  match Hashtbl.find_opt t.comb_seqs id with
  | None -> invalid_arg (Printf.sprintf "Profile.record_comb: unknown id %d" id)
  | Some seq ->
    let mask = ref 0 in
    Array.iteri
      (fun i (cond, a, b) ->
        if Mir.Cond.eval cond (eval_operand read_reg a) (eval_operand read_reg b)
        then mask := !mask lor (1 lsl i))
      seq.conds;
    seq.comb_counts.(!mask) <- seq.comb_counts.(!mask) + 1;
    seq.comb_executions <- seq.comb_executions + 1
