(** Types shared by the execution backends.

    {!Machine} re-exports these under its historical names
    ([Machine.Trap], [Machine.config], [Machine.result]); new code that
    only needs the types (e.g. {!Compiled}) can use them directly. *)

exception Trap of string
(** Runtime error: division by zero, out-of-bounds access, unknown
    function, call-depth or fuel exhaustion, unlowered switch. *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** [trap fmt ...] raises {!Trap} with a formatted message. *)

exception Program_exit of int
(** Raised by the [exit] builtin; caught by every backend's entry
    point. *)

exception Cancelled
(** Raised by a backend when {!config.cancel} returns [true]: the run
    was cooperatively cancelled (e.g. a watchdog deadline expired).
    Unlike {!Trap} this is not a property of the simulated program —
    callers that enforce per-job deadlines ({!Driver.Guard}) catch it
    and classify the job as timed out. *)

type config = {
  fuel : int;        (** maximum dynamic instructions before trapping *)
  max_depth : int;   (** maximum call depth *)
  cancel : (unit -> bool) option;
      (** cooperative cancellation flag, polled once per executed basic
          block by every backend; when it returns [true] the run raises
          {!Cancelled}.  [None] (the default) adds no per-block cost.
          The closure should amortize any clock reads itself. *)
}

val default_config : config

val watchdog : ms:int -> unit -> bool
(** [watchdog ~ms] is a fresh cancellation flag for {!config.cancel}
    that starts returning [true] once [ms] milliseconds of wall clock
    have elapsed since its creation.  Clock reads are amortized (one
    every 2048 polls), and expiry latches: all later polls cancel
    immediately, so one flag can cover several consecutive runs of the
    same job (e.g. a pipeline's training and measurement runs) under a
    single deadline. *)

type result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}
