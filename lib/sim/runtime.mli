(** Types shared by the execution backends.

    {!Machine} re-exports these under its historical names
    ([Machine.Trap], [Machine.config], [Machine.result]); new code that
    only needs the types (e.g. {!Compiled}) can use them directly. *)

exception Trap of string
(** Runtime error: division by zero, out-of-bounds access, unknown
    function, call-depth or fuel exhaustion, unlowered switch. *)

val trap : ('a, unit, string, 'b) format4 -> 'a
(** [trap fmt ...] raises {!Trap} with a formatted message. *)

exception Program_exit of int
(** Raised by the [exit] builtin; caught by every backend's entry
    point. *)

type config = {
  fuel : int;        (** maximum dynamic instructions before trapping *)
  max_depth : int;   (** maximum call depth *)
}

val default_config : config

type result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}
