(* the runtime types are shared by all execution backends *)
exception Trap = Runtime.Trap
exception Program_exit = Runtime.Program_exit
exception Cancelled = Runtime.Cancelled

let trap fmt = Printf.ksprintf (fun s -> raise (Trap s)) fmt

type config = Runtime.config = {
  fuel : int;
  max_depth : int;
  cancel : (unit -> bool) option;
}

let default_config = Runtime.default_config

type result = Runtime.result = {
  counters : Counters.t;
  output : string;
  exit_code : int;
}

(* ------------------------------------------------------------------ *)
(* Reference interpreter: walks the MIR in place, resolving labels     *)
(* through per-function hashtables.  Kept as the oracle the            *)
(* pre-decoded backend below is cross-checked against.                 *)
(* ------------------------------------------------------------------ *)

(* Pre-resolved view of a function: block array, label -> index map, and
   per-block site numbers for branch predictor indexing. *)
type func_image = {
  fn : Mir.Func.t;
  blocks : Mir.Block.t array;
  index_of : (string, int) Hashtbl.t;
  sites : int array;  (* site id of each block's terminator *)
  nregs : int;
}

type image = {
  funcs : (string, func_image) Hashtbl.t;
}

let build_image (p : Mir.Program.t) =
  let funcs = Hashtbl.create 16 in
  let next_site = ref 0 in
  List.iter
    (fun (fn : Mir.Func.t) ->
      let blocks = Array.of_list fn.Mir.Func.blocks in
      let index_of = Hashtbl.create (Array.length blocks) in
      Array.iteri
        (fun i (b : Mir.Block.t) -> Hashtbl.replace index_of b.Mir.Block.label i)
        blocks;
      let sites =
        Array.map
          (fun (_ : Mir.Block.t) ->
            let s = !next_site in
            incr next_site;
            s)
          blocks
      in
      Hashtbl.replace funcs fn.Mir.Func.name
        { fn; blocks; index_of; sites; nregs = Image.max_reg_of fn })
    p.Mir.Program.funcs;
  { funcs }

(* site naming goes through the pre-decoded image, whose dense
   program-order numbering matches [build_image] above; consumers that
   already hold an {!Image.t} should call {!Image.sites} directly and
   skip the lowering entirely *)
let sites p = Image.sites (Image.build p)

let site_of p ~func ~label =
  let img = Image.build p in
  match Image.find_func img func with
  | None -> trap "site_of: unknown function %s" func
  | Some _ -> (
    match Image.site_of img ~func ~label with
    | Some s -> s
    | None -> trap "site_of: unknown label %s" label)

type state = {
  image : image;
  memory : (string, int array) Hashtbl.t;
  counters : Counters.t;
  out : Buffer.t;
  input : string;
  mutable input_pos : int;
  mutable cc : int * int;  (* operands of the last executed cmp *)
  mutable fuel_left : int;
  config : config;
  profile : Profile.t option;
  on_branch : (site:int -> taken:bool -> unit) option;
  on_block : (func:string -> label:string -> unit) option;
}

let charge st n =
  st.counters.Counters.insns <- st.counters.Counters.insns + n;
  st.fuel_left <- st.fuel_left - n;
  if st.fuel_left < 0 then trap "fuel exhausted (%d instructions)" st.config.fuel

let getchar st =
  if st.input_pos >= String.length st.input then -1
  else begin
    let c = Char.code st.input.[st.input_pos] in
    st.input_pos <- st.input_pos + 1;
    c
  end

let memory_cell st sym idx =
  match Hashtbl.find_opt st.memory sym with
  | None -> trap "access to unknown global %s" sym
  | Some arr ->
    if idx < 0 || idx >= Array.length arr then
      trap "out-of-bounds access %s[%d] (size %d)" sym idx (Array.length arr);
    arr, idx

let operand_value regs = function
  | Mir.Operand.Reg r -> regs.(Mir.Reg.to_int r)
  | Mir.Operand.Imm n -> n

let set_reg regs r v = regs.(Mir.Reg.to_int r) <- v

(* Built-in functions; returns Some value for value-producing builtins. *)
let builtin st name args =
  match name, args with
  | "getchar", [] -> Some (getchar st)
  | "putchar", [ c ] ->
    Buffer.add_char st.out (Char.chr (c land 255));
    Some c
  | "print_int", [ n ] ->
    Buffer.add_string st.out (string_of_int n);
    Some 0
  | "exit", [ code ] -> raise (Program_exit code)
  | ("getchar" | "putchar" | "print_int" | "exit"), _ ->
    trap "builtin %s: wrong number of arguments" name
  | _, _ -> None

let rec exec_call st depth name args =
  match builtin st name args with
  | Some v -> v
  | None -> (
    match Hashtbl.find_opt st.image.funcs name with
    | None -> trap "call to unknown function %s" name
    | Some fi ->
      if depth >= st.config.max_depth then trap "call depth exceeded in %s" name;
      let regs = Array.make (max fi.nregs 1) 0 in
      List.iteri
        (fun i r ->
          match List.nth_opt args i with
          | Some v -> set_reg regs r v
          | None -> trap "too few arguments to %s" name)
        fi.fn.Mir.Func.params;
      exec_blocks st depth fi regs 0)

and exec_insn st depth regs (i : Mir.Insn.t) =
  match i with
  | Mir.Insn.Profile_range (id, r) ->
    (match st.profile with
    | Some p -> Profile.record_range p id regs.(Mir.Reg.to_int r)
    | None -> ())
  | Mir.Insn.Profile_comb id ->
    (match st.profile with
    | Some p ->
      Profile.record_comb p id ~read_reg:(fun r -> regs.(Mir.Reg.to_int r))
    | None -> ())
  | Mir.Insn.Mov (r, o) ->
    charge st 1;
    set_reg regs r (operand_value regs o)
  | Mir.Insn.Unop (op, r, o) ->
    charge st 1;
    set_reg regs r (Mir.Insn.eval_unop op (operand_value regs o))
  | Mir.Insn.Binop (op, r, a, b) ->
    charge st 1;
    let va = operand_value regs a and vb = operand_value regs b in
    let v =
      try Mir.Insn.eval_binop op va vb
      with Division_by_zero -> trap "division by zero"
    in
    set_reg regs r v
  | Mir.Insn.Load (r, sym, idx) ->
    charge st 1;
    st.counters.Counters.loads <- st.counters.Counters.loads + 1;
    let arr, i = memory_cell st sym (operand_value regs idx) in
    set_reg regs r arr.(i)
  | Mir.Insn.Store (sym, idx, v) ->
    charge st 1;
    st.counters.Counters.stores <- st.counters.Counters.stores + 1;
    let arr, i = memory_cell st sym (operand_value regs idx) in
    arr.(i) <- operand_value regs v
  | Mir.Insn.Cmp (a, b) ->
    charge st 1;
    st.cc <- (operand_value regs a, operand_value regs b)
  | Mir.Insn.Call (dst, name, args) ->
    charge st 1;
    st.counters.Counters.calls <- st.counters.Counters.calls + 1;
    let v = exec_call st (depth + 1) name (List.map (operand_value regs) args) in
    (match dst with Some r -> set_reg regs r v | None -> ())
  | Mir.Insn.Nop ->
    charge st 1;
    st.counters.Counters.nops <- st.counters.Counters.nops + 1

(* Execute the delay slot of an emitted control transfer. *)
and exec_delay st depth regs (t : Mir.Block.term) =
  match t.Mir.Block.delay with
  | Some i -> exec_insn st depth regs i
  | None ->
    charge st 1;
    st.counters.Counters.nops <- st.counters.Counters.nops + 1

(* Charge the synthetic jump needed when a not-taken branch does not fall
   through to the next block in the layout. *)
and charge_layout_jump st =
  charge st 2 (* jmp + its (nop) delay slot *);
  st.counters.Counters.jumps <- st.counters.Counters.jumps + 1;
  st.counters.Counters.nops <- st.counters.Counters.nops + 1

and exec_blocks st depth fi regs start_index =
  let block_index = ref start_index in
  let return_value = ref None in
  let running = ref true in
  while !running do
    (match st.config.cancel with
    | Some c -> if c () then raise Runtime.Cancelled
    | None -> ());
    let b = fi.blocks.(!block_index) in
    (match st.on_block with
    | Some f -> f ~func:fi.fn.Mir.Func.name ~label:b.Mir.Block.label
    | None -> ());
    List.iter (exec_insn st depth regs) b.Mir.Block.insns;
    let layout_next =
      if !block_index + 1 < Array.length fi.blocks then
        Some fi.blocks.(!block_index + 1).Mir.Block.label
      else None
    in
    let goto label =
      match Hashtbl.find_opt fi.index_of label with
      | Some i -> block_index := i
      | None -> trap "jump to unknown label %s" label
    in
    let term = b.Mir.Block.term in
    match term.Mir.Block.kind with
    | Mir.Block.Br (cond, taken_l, not_taken_l) ->
      charge st 1;
      st.counters.Counters.cond_branches <-
        st.counters.Counters.cond_branches + 1;
      let a, cb = st.cc in
      let taken = Mir.Cond.eval cond a cb in
      if taken then
        st.counters.Counters.taken_branches <-
          st.counters.Counters.taken_branches + 1;
      (match st.on_branch with
      | Some f -> f ~site:fi.sites.(!block_index) ~taken
      | None -> ());
      (if term.Mir.Block.annul then
         match term.Mir.Block.delay with
         | Some i when taken -> exec_insn st depth regs i
         | Some _ -> () (* annulled: the slot is squashed, nothing executes *)
         | None ->
           charge st 1;
           st.counters.Counters.nops <- st.counters.Counters.nops + 1
       else exec_delay st depth regs term);
      if taken then goto taken_l
      else begin
        (match layout_next with
        | Some next when String.equal next not_taken_l -> ()
        | Some _ | None -> charge_layout_jump st);
        goto not_taken_l
      end
    | Mir.Block.Jmp l ->
      (match layout_next with
      | Some next when String.equal next l -> ()
      | Some _ | None ->
        charge st 1;
        st.counters.Counters.jumps <- st.counters.Counters.jumps + 1;
        exec_delay st depth regs term);
      goto l
    | Mir.Block.Switch _ ->
      trap "unlowered switch reached the simulator (%s)" b.Mir.Block.label
    | Mir.Block.Jtab (r, id) ->
      charge st 1;
      st.counters.Counters.indirect_jumps <-
        st.counters.Counters.indirect_jumps + 1;
      exec_delay st depth regs term;
      let table = Mir.Func.jtab fi.fn id in
      let idx = regs.(Mir.Reg.to_int r) in
      if idx < 0 || idx >= Array.length table then
        trap "jump table index %d out of bounds (%s)" idx b.Mir.Block.label;
      goto table.(idx)
    | Mir.Block.Ret v ->
      charge st 1;
      st.counters.Counters.returns <- st.counters.Counters.returns + 1;
      exec_delay st depth regs term;
      return_value := Option.map (operand_value regs) v;
      running := false
  done;
  match !return_value with Some v -> v | None -> 0

let run_reference ?(config = default_config) ?profile ?on_branch ?on_block
    (p : Mir.Program.t) ~input =
  let image = build_image p in
  let memory = Hashtbl.create 64 in
  List.iter
    (fun (g : Mir.Program.global) ->
      let arr =
        match g.Mir.Program.init with
        | Some init ->
          let arr = Array.make g.Mir.Program.size 0 in
          Array.blit init 0 arr 0 (Array.length init);
          arr
        | None -> Array.make g.Mir.Program.size 0
      in
      Hashtbl.replace memory g.Mir.Program.gname arr)
    p.Mir.Program.globals;
  let st =
    {
      image;
      memory;
      counters = Counters.make ();
      out = Buffer.create 1024;
      input;
      input_pos = 0;
      cc = (0, 0);
      fuel_left = config.fuel;
      config;
      profile;
      on_branch;
      on_block;
    }
  in
  let exit_code =
    try exec_call st 0 "main" [] with Program_exit code -> code
  in
  { counters = st.counters; output = Buffer.contents st.out; exit_code }

(* ------------------------------------------------------------------ *)
(* Pre-decoded backend: executes an {!Image.t}.  The main loop does no *)
(* hashtable lookups, no string comparisons and no list traversals;    *)
(* observable behaviour is identical to the reference interpreter.     *)
(* ------------------------------------------------------------------ *)

type pstate = {
  pimage : Image.t;
  pmemory : int array array;  (* indexed by global slot *)
  pcounters : Counters.t;
  pout : Buffer.t;
  pinput : string;
  mutable pinput_pos : int;
  mutable pcc_a : int;
  mutable pcc_b : int;
  mutable pfuel_left : int;
  pconfig : config;
  pprofile : Profile.t option;
  pon_branch : (site:int -> taken:bool -> unit) option;
  pon_block : (func:string -> label:string -> unit) option;
}

let pcharge st n =
  st.pcounters.Counters.insns <- st.pcounters.Counters.insns + n;
  st.pfuel_left <- st.pfuel_left - n;
  if st.pfuel_left < 0 then
    trap "fuel exhausted (%d instructions)" st.pconfig.fuel

let pgetchar st =
  if st.pinput_pos >= String.length st.pinput then -1
  else begin
    let c = Char.code st.pinput.[st.pinput_pos] in
    st.pinput_pos <- st.pinput_pos + 1;
    c
  end

let pval regs = function
  | Image.Preg r -> regs.(r)
  | Image.Pimm n -> n

let pcharge_layout_jump st =
  pcharge st 2 (* jmp + its (nop) delay slot *);
  st.pcounters.Counters.jumps <- st.pcounters.Counters.jumps + 1;
  st.pcounters.Counters.nops <- st.pcounters.Counters.nops + 1

let rec pexec_call st depth fid (argv : int array) =
  let fi = st.pimage.Image.funcs.(fid) in
  if depth >= st.pconfig.max_depth then
    trap "call depth exceeded in %s" fi.Image.pf_name;
  let regs = Array.make (max fi.Image.pf_nregs 1) 0 in
  let params = fi.Image.pf_params in
  let np = Array.length params in
  for i = 0 to np - 1 do
    if i >= Array.length argv then trap "too few arguments to %s" fi.Image.pf_name;
    regs.(params.(i)) <- argv.(i)
  done;
  pexec_blocks st depth fi regs 0

and pexec_insn st depth regs (i : Image.pinsn) =
  match i with
  | Image.Pprofile_range (id, r) ->
    (match st.pprofile with
    | Some p -> Profile.record_range p id regs.(r)
    | None -> ())
  | Image.Pprofile_comb id ->
    (match st.pprofile with
    | Some p ->
      Profile.record_comb p id ~read_reg:(fun r -> regs.(Mir.Reg.to_int r))
    | None -> ())
  | Image.Pmov (r, o) ->
    pcharge st 1;
    regs.(r) <- pval regs o
  | Image.Punop (op, r, o) ->
    pcharge st 1;
    regs.(r) <- Mir.Insn.eval_unop op (pval regs o)
  | Image.Pbinop (op, r, a, b) ->
    pcharge st 1;
    let va = pval regs a and vb = pval regs b in
    let v =
      try Mir.Insn.eval_binop op va vb
      with Division_by_zero -> trap "division by zero"
    in
    regs.(r) <- v
  | Image.Pload (r, slot, idx) ->
    pcharge st 1;
    st.pcounters.Counters.loads <- st.pcounters.Counters.loads + 1;
    let arr = st.pmemory.(slot) in
    let i = pval regs idx in
    if i < 0 || i >= Array.length arr then
      trap "out-of-bounds access %s[%d] (size %d)"
        st.pimage.Image.globals.(slot).Image.g_name i (Array.length arr);
    regs.(r) <- arr.(i)
  | Image.Pstore (slot, idx, v) ->
    pcharge st 1;
    st.pcounters.Counters.stores <- st.pcounters.Counters.stores + 1;
    let arr = st.pmemory.(slot) in
    let i = pval regs idx in
    if i < 0 || i >= Array.length arr then
      trap "out-of-bounds access %s[%d] (size %d)"
        st.pimage.Image.globals.(slot).Image.g_name i (Array.length arr);
    arr.(i) <- pval regs v
  | Image.Pcmp (a, b) ->
    pcharge st 1;
    st.pcc_a <- pval regs a;
    st.pcc_b <- pval regs b
  | Image.Pcall (dst, fid, args) ->
    pcharge st 1;
    st.pcounters.Counters.calls <- st.pcounters.Counters.calls + 1;
    let argv = Array.map (pval regs) args in
    let v = pexec_call st (depth + 1) fid argv in
    if dst >= 0 then regs.(dst) <- v
  | Image.Pbuiltin (dst, b, args) ->
    pcharge st 1;
    st.pcounters.Counters.calls <- st.pcounters.Counters.calls + 1;
    let v =
      match b with
      | Image.Bgetchar -> pgetchar st
      | Image.Bputchar ->
        let c = pval regs args.(0) in
        Buffer.add_char st.pout (Char.chr (c land 255));
        c
      | Image.Bprint_int ->
        Buffer.add_string st.pout (string_of_int (pval regs args.(0)));
        0
      | Image.Bexit -> raise (Program_exit (pval regs args.(0)))
    in
    if dst >= 0 then regs.(dst) <- v
  | Image.Pnop ->
    pcharge st 1;
    st.pcounters.Counters.nops <- st.pcounters.Counters.nops + 1
  | Image.Ptrap_insn msg -> raise (Trap msg)

and pexec_delay st depth regs (b : Image.pblock) =
  match b.Image.pb_delay with
  | Some i -> pexec_insn st depth regs i
  | None ->
    pcharge st 1;
    st.pcounters.Counters.nops <- st.pcounters.Counters.nops + 1

and pexec_blocks st depth fi regs start_index =
  let blocks = fi.Image.pf_blocks in
  let block_index = ref start_index in
  let return_value = ref 0 in
  let running = ref true in
  let goto target =
    if target >= 0 then block_index := target
    else trap "jump to unknown label %s" fi.Image.pf_unknown.(-target - 1)
  in
  let cancel = st.pconfig.cancel in
  while !running do
    (match cancel with
    | Some c -> if c () then raise Runtime.Cancelled
    | None -> ());
    let b = blocks.(!block_index) in
    (match st.pon_block with
    | Some f -> f ~func:fi.Image.pf_name ~label:b.Image.pb_label
    | None -> ());
    let insns = b.Image.pb_insns in
    for i = 0 to Array.length insns - 1 do
      pexec_insn st depth regs (Array.unsafe_get insns i)
    done;
    match b.Image.pb_term with
    | Image.Pbr (cond, taken_t, not_taken_t, nt_falls) ->
      pcharge st 1;
      st.pcounters.Counters.cond_branches <-
        st.pcounters.Counters.cond_branches + 1;
      let taken = Mir.Cond.eval cond st.pcc_a st.pcc_b in
      if taken then
        st.pcounters.Counters.taken_branches <-
          st.pcounters.Counters.taken_branches + 1;
      (match st.pon_branch with
      | Some f -> f ~site:b.Image.pb_site ~taken
      | None -> ());
      (if b.Image.pb_annul then
         match b.Image.pb_delay with
         | Some i when taken -> pexec_insn st depth regs i
         | Some _ -> () (* annulled: the slot is squashed, nothing executes *)
         | None ->
           pcharge st 1;
           st.pcounters.Counters.nops <- st.pcounters.Counters.nops + 1
       else pexec_delay st depth regs b);
      if taken then goto taken_t
      else begin
        if not nt_falls then pcharge_layout_jump st;
        goto not_taken_t
      end
    | Image.Pjmp (target, falls) ->
      if falls then block_index := target
      else begin
        pcharge st 1;
        st.pcounters.Counters.jumps <- st.pcounters.Counters.jumps + 1;
        pexec_delay st depth regs b;
        goto target
      end
    | Image.Pjtab (r, table) ->
      pcharge st 1;
      st.pcounters.Counters.indirect_jumps <-
        st.pcounters.Counters.indirect_jumps + 1;
      pexec_delay st depth regs b;
      let idx = regs.(r) in
      if idx < 0 || idx >= Array.length table then
        trap "jump table index %d out of bounds (%s)" idx b.Image.pb_label;
      goto table.(idx)
    | Image.Pret v ->
      pcharge st 1;
      st.pcounters.Counters.returns <- st.pcounters.Counters.returns + 1;
      pexec_delay st depth regs b;
      (match v with Some o -> return_value := pval regs o | None -> ());
      running := false
    | Image.Ptrap_term msg -> raise (Trap msg)
    | Image.Praise_term e -> raise e
  done;
  !return_value

let run_image ?(config = default_config) ?profile ?on_branch ?on_block
    (img : Image.t) ~input =
  let memory =
    Array.map
      (fun (g : Image.global) ->
        match g.Image.g_init with
        | Some init ->
          let arr = Array.make g.Image.g_size 0 in
          Array.blit init 0 arr 0 (Array.length init);
          arr
        | None -> Array.make g.Image.g_size 0)
      img.Image.globals
  in
  let st =
    {
      pimage = img;
      pmemory = memory;
      pcounters = Counters.make ();
      pout = Buffer.create 1024;
      pinput = input;
      pinput_pos = 0;
      pcc_a = 0;
      pcc_b = 0;
      pfuel_left = config.fuel;
      pconfig = config;
      pprofile = profile;
      pon_branch = on_branch;
      pon_block = on_block;
    }
  in
  let exit_code =
    try
      if img.Image.main_id < 0 then trap "call to unknown function main"
      else pexec_call st 0 img.Image.main_id [||]
    with Program_exit code -> code
  in
  { counters = st.pcounters; output = Buffer.contents st.pout; exit_code }

let run ?config ?profile ?on_branch ?on_block ?(backend = `Predecoded)
    (p : Mir.Program.t) ~input =
  match backend with
  | `Reference -> run_reference ?config ?profile ?on_branch ?on_block p ~input
  | `Predecoded ->
    run_image ?config ?profile ?on_branch ?on_block (Image.build p) ~input
  | `Compiled -> Compiled.run ?config ?profile ?on_branch ?on_block p ~input
  | `Native -> Native.run ?config ?profile ?on_branch ?on_block p ~input
