(* Closure-compiled execution backend ("threaded code").

   Each {!Image.pblock} is compiled once into an OCaml closure that
   executes its instructions straight-line and returns the index of the
   next block to run; the per-instruction [match] dispatch of the
   pre-decoded interpreter disappears — every instruction is a
   specialized closure built at compile time (operand shapes resolved,
   builtins and callees bound, constants folded), fused into one code
   chain per block.

   Counters and fuel are charged in block-granular batches precomputed
   at compile time.  Exactness is preserved by flushing the pending
   batch before every point whose behaviour the outside world can
   observe: instructions that can trap or perform I/O (loads, stores,
   register-divisor division, calls, builtins), profile recordings, and
   every terminator.  Between two flush points only pure register
   arithmetic runs, so moving its charges to the flush is
   indistinguishable — the fuel trap fires under exactly the same
   conditions and with the same message as the other backends, and the
   ten counters are exact at every exit, including mid-block [exit].

   Measurement is fused into the loop: branch terminators deliver their
   outcome to a {!Predictor.sink} held in the run state — a prebuilt
   predictor bank is swept with a flat array loop, so the measure stage
   performs zero allocation per branch event. *)

open Runtime

type state = {
  memory : int array array;  (* indexed by global slot *)
  counters : Counters.t;
  out : Buffer.t;
  input : string;
  mutable input_pos : int;
  mutable cc_a : int;
  mutable cc_b : int;
  mutable fuel_left : int;
  mutable depth : int;       (* depth of the currently-running frame *)
  mutable ret : int;         (* return value of the innermost frame *)
  fuel : int;                (* config.fuel, for the trap message *)
  max_depth : int;
  profile : Profile.t option;
  mutable sink : Predictor.sink;
  on_block : (func:string -> label:string -> unit) option;
  cancel : (unit -> bool) option;
}

(* straight-line code: a compiled instruction (or fused run of them) *)
type code = state -> int array -> unit

(* a compiled block: runs the body, then returns the next block index
   within the same function, or -1 to return from the function *)
type blockcode = state -> int array -> int

type cfunc = {
  c_name : string;
  c_params : int array;
  c_nregs : int;
  mutable c_blocks : blockcode array;  (* backpatched after compilation *)
}

type t = {
  c_image : Image.t;
  c_funcs : cfunc array;
}

let image t = t.c_image

(* ------------------------------------------------------------------ *)
(* Charging                                                            *)
(* ------------------------------------------------------------------ *)

let[@inline] charge st n =
  st.counters.Counters.insns <- st.counters.Counters.insns + n;
  st.fuel_left <- st.fuel_left - n;
  if st.fuel_left < 0 then trap "fuel exhausted (%d instructions)" st.fuel

(* flush a pending batch of [pi] instructions of which [pn] are nops *)
let[@inline] flush st pi pn =
  st.counters.Counters.insns <- st.counters.Counters.insns + pi;
  if pn > 0 then st.counters.Counters.nops <- st.counters.Counters.nops + pn;
  st.fuel_left <- st.fuel_left - pi;
  if st.fuel_left < 0 then trap "fuel exhausted (%d instructions)" st.fuel

let flush_code pi pn : code =
  if pn = 0 then fun st _ -> charge st pi else fun st _ -> flush st pi pn

(* the synthetic jump when a not-taken branch does not fall through *)
let[@inline] charge_layout_jump st =
  let c = st.counters in
  c.Counters.jumps <- c.Counters.jumps + 1;
  c.Counters.nops <- c.Counters.nops + 1;
  charge st 2

(* an unfilled delay slot: one counted nop *)
let[@inline] charge_nop st =
  st.counters.Counters.nops <- st.counters.Counters.nops + 1;
  charge st 1

(* ------------------------------------------------------------------ *)
(* Code fusion                                                         *)
(* ------------------------------------------------------------------ *)

let rec seq (codes : code list) : code =
  match codes with
  | [] -> fun _ _ -> ()
  | [ a ] -> a
  | [ a; b ] ->
    fun st regs ->
      a st regs;
      b st regs
  | [ a; b; c ] ->
    fun st regs ->
      a st regs;
      b st regs;
      c st regs
  | a :: b :: c :: d :: rest ->
    let k = seq rest in
    fun st regs ->
      a st regs;
      b st regs;
      c st regs;
      d st regs;
      k st regs

(* ------------------------------------------------------------------ *)
(* Instruction compilation                                             *)
(* ------------------------------------------------------------------ *)

(* how a compiled instruction participates in charge batching *)
type comp =
  | Cnop          (* counted nop; no code at all *)
  | Cpure of code (* no observable effect; charge joins the batch *)
  | Ceff of code  (* observable or trapping; batch + own 1 flushed first *)
  | Cobs of code  (* observable but charges nothing (profile, traps) *)

let operand = function
  | Image.Preg r -> fun regs -> Array.unsafe_get regs r
  | Image.Pimm n -> fun _ -> n

let getchar st =
  if st.input_pos >= String.length st.input then -1
  else begin
    let c = Char.code (String.unsafe_get st.input st.input_pos) in
    st.input_pos <- st.input_pos + 1;
    c
  end

(* run the block list of a function; the entry block is index 0.  The
   cooperative cancellation flag is polled once per block, but only on
   the dedicated loop so an uncancellable run pays nothing for it. *)
let run_blocks st (blocks : blockcode array) regs =
  if Array.length blocks = 0 then
    (* same failure as the other backends indexing an empty block array *)
    raise (Invalid_argument "index out of bounds");
  let i = ref 0 in
  (match st.cancel with
  | None ->
    while !i >= 0 do
      i := (Array.unsafe_get blocks !i) st regs
    done
  | Some c ->
    while !i >= 0 do
      if c () then raise Cancelled;
      i := (Array.unsafe_get blocks !i) st regs
    done);
  st.ret

let compile_binop op r a b =
  let open Mir.Insn in
  match op, a, b with
  (* division and modulus by a register (or zero) can trap *)
  | (Div | Rem), _, Image.Pimm 0 ->
    Ceff (fun _ _ -> trap "division by zero")
  | Div, _, Image.Pimm n ->
    let x = operand a in
    Cpure (fun _ regs -> Array.unsafe_set regs r (x regs / n))
  | Rem, _, Image.Pimm n ->
    let x = operand a in
    Cpure (fun _ regs -> Array.unsafe_set regs r (x regs mod n))
  | Div, _, Image.Preg y ->
    let x = operand a in
    Ceff
      (fun _ regs ->
        let d = Array.unsafe_get regs y in
        if d = 0 then trap "division by zero";
        Array.unsafe_set regs r (x regs / d))
  | Rem, _, Image.Preg y ->
    let x = operand a in
    Ceff
      (fun _ regs ->
        let d = Array.unsafe_get regs y in
        if d = 0 then trap "division by zero";
        Array.unsafe_set regs r (x regs mod d))
  (* the pure operators, specialized on operand shape *)
  | Add, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x + Array.unsafe_get regs y))
  | Add, Image.Preg x, Image.Pimm n ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x + n))
  | Add, Image.Pimm n, Image.Preg y ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (n + Array.unsafe_get regs y))
  | Sub, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x - Array.unsafe_get regs y))
  | Sub, Image.Preg x, Image.Pimm n ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x - n))
  | Sub, Image.Pimm n, Image.Preg y ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (n - Array.unsafe_get regs y))
  | Mul, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x * Array.unsafe_get regs y))
  | Mul, Image.Preg x, Image.Pimm n ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x * n))
  | Mul, Image.Pimm n, Image.Preg y ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (n * Array.unsafe_get regs y))
  | And, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x land Array.unsafe_get regs y))
  | And, Image.Preg x, Image.Pimm n ->
    Cpure
      (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x land n))
  | Or, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lor Array.unsafe_get regs y))
  | Or, Image.Preg x, Image.Pimm n ->
    Cpure
      (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lor n))
  | Xor, Image.Preg x, Image.Preg y ->
    Cpure
      (fun _ regs ->
        Array.unsafe_set regs r
          (Array.unsafe_get regs x lxor Array.unsafe_get regs y))
  | Xor, Image.Preg x, Image.Pimm n ->
    Cpure
      (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lxor n))
  | Shl, Image.Preg x, Image.Pimm n ->
    let s = n land 63 in
    Cpure
      (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x lsl s))
  | Shr, Image.Preg x, Image.Pimm n ->
    let s = n land 63 in
    Cpure
      (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs x asr s))
  | (Add | Sub | Mul | And | Or | Xor | Shl | Shr), _, _ -> (
    (* rare shapes: immediate-immediate folds to a constant move, the
       rest evaluate both operands generically *)
    match a, b with
    | Image.Pimm x, Image.Pimm y ->
      let v = eval_binop op x y in
      Cpure (fun _ regs -> Array.unsafe_set regs r v)
    | _ ->
      let x = operand a and y = operand b in
      Cpure
        (fun _ regs -> Array.unsafe_set regs r (eval_binop op (x regs) (y regs))))

let compile_insn (cfuncs : cfunc array) (globals : Image.global array)
    (i : Image.pinsn) : comp =
  match i with
  | Image.Pnop -> Cnop
  | Image.Pmov (r, Image.Pimm n) ->
    Cpure (fun _ regs -> Array.unsafe_set regs r n)
  | Image.Pmov (r, Image.Preg s) ->
    Cpure (fun _ regs -> Array.unsafe_set regs r (Array.unsafe_get regs s))
  | Image.Punop (Mir.Insn.Neg, r, o) ->
    let x = operand o in
    Cpure (fun _ regs -> Array.unsafe_set regs r (-x regs))
  | Image.Punop (Mir.Insn.Not, r, o) ->
    let x = operand o in
    Cpure (fun _ regs -> Array.unsafe_set regs r (if x regs = 0 then 1 else 0))
  | Image.Pbinop (op, r, a, b) -> compile_binop op r a b
  | Image.Pcmp (a, b) ->
    let x = operand a and y = operand b in
    Cpure
      (fun st regs ->
        st.cc_a <- x regs;
        st.cc_b <- y regs)
  | Image.Pload (r, slot, idx) ->
    let name = globals.(slot).Image.g_name in
    let ix = operand idx in
    Ceff
      (fun st regs ->
        st.counters.Counters.loads <- st.counters.Counters.loads + 1;
        let arr = Array.unsafe_get st.memory slot in
        let i = ix regs in
        if i < 0 || i >= Array.length arr then
          trap "out-of-bounds access %s[%d] (size %d)" name i (Array.length arr);
        Array.unsafe_set regs r (Array.unsafe_get arr i))
  | Image.Pstore (slot, idx, v) ->
    let name = globals.(slot).Image.g_name in
    let ix = operand idx and ve = operand v in
    Ceff
      (fun st regs ->
        st.counters.Counters.stores <- st.counters.Counters.stores + 1;
        let arr = Array.unsafe_get st.memory slot in
        let i = ix regs in
        if i < 0 || i >= Array.length arr then
          trap "out-of-bounds access %s[%d] (size %d)" name i (Array.length arr);
        Array.unsafe_set arr i (ve regs))
  | Image.Pcall (dst, fid, args) ->
    let callee = cfuncs.(fid) in
    let nparams = Array.length callee.c_params in
    if Array.length args < nparams then
      Ceff
        (fun st _ ->
          st.counters.Counters.calls <- st.counters.Counters.calls + 1;
          if st.depth + 1 >= st.max_depth then
            trap "call depth exceeded in %s" callee.c_name;
          trap "too few arguments to %s" callee.c_name)
    else begin
      (* bind the first nparams arguments straight into the callee's
         fresh register file; extra arguments are pure and unused *)
      let binds =
        Array.init nparams (fun i -> (callee.c_params.(i), operand args.(i)))
      in
      let nregs = max callee.c_nregs 1 in
      Ceff
        (fun st regs ->
          st.counters.Counters.calls <- st.counters.Counters.calls + 1;
          let d = st.depth + 1 in
          if d >= st.max_depth then
            trap "call depth exceeded in %s" callee.c_name;
          let cregs = Array.make nregs 0 in
          for i = 0 to nparams - 1 do
            let slot, ev = Array.unsafe_get binds i in
            Array.unsafe_set cregs slot (ev regs)
          done;
          st.depth <- d;
          let v = run_blocks st callee.c_blocks cregs in
          st.depth <- d - 1;
          if dst >= 0 then Array.unsafe_set regs dst v)
    end
  | Image.Pbuiltin (dst, b, args) -> (
    match b with
    | Image.Bgetchar ->
      if dst >= 0 then
        Ceff
          (fun st regs ->
            st.counters.Counters.calls <- st.counters.Counters.calls + 1;
            Array.unsafe_set regs dst (getchar st))
      else
        Ceff
          (fun st _ ->
            st.counters.Counters.calls <- st.counters.Counters.calls + 1;
            ignore (getchar st))
    | Image.Bputchar ->
      let ev = operand args.(0) in
      Ceff
        (fun st regs ->
          st.counters.Counters.calls <- st.counters.Counters.calls + 1;
          let c = ev regs in
          Buffer.add_char st.out (Char.chr (c land 255));
          if dst >= 0 then Array.unsafe_set regs dst c)
    | Image.Bprint_int ->
      let ev = operand args.(0) in
      Ceff
        (fun st regs ->
          st.counters.Counters.calls <- st.counters.Counters.calls + 1;
          Buffer.add_string st.out (string_of_int (ev regs));
          if dst >= 0 then Array.unsafe_set regs dst 0)
    | Image.Bexit ->
      let ev = operand args.(0) in
      Ceff
        (fun st regs ->
          st.counters.Counters.calls <- st.counters.Counters.calls + 1;
          raise (Program_exit (ev regs))))
  | Image.Pprofile_range (id, r) ->
    Cobs
      (fun st regs ->
        match st.profile with
        | Some p -> Profile.record_range p id (Array.unsafe_get regs r)
        | None -> ())
  | Image.Pprofile_comb id ->
    Cobs
      (fun st regs ->
        match st.profile with
        | Some p ->
          Profile.record_comb p id ~read_reg:(fun r ->
              regs.(Mir.Reg.to_int r))
        | None -> ())
  | Image.Ptrap_insn msg ->
    (* uncharged, matching the pre-decoded backend's trap thunks *)
    Cobs (fun _ _ -> raise (Trap msg))

(* a delay-slot instruction executed standalone: it pays its own charge *)
let compile_delay_insn cfuncs globals i : code =
  match compile_insn cfuncs globals i with
  | Cnop -> fun st _ -> charge_nop st
  | Cpure c | Ceff c ->
    fun st regs ->
      charge st 1;
      c st regs
  | Cobs c -> c

(* the delay slot of a non-annulled transfer: filled or a counted nop *)
let compile_delay cfuncs globals = function
  | Some i -> compile_delay_insn cfuncs globals i
  | None -> fun st _ -> charge_nop st

(* ------------------------------------------------------------------ *)
(* Terminator compilation                                              *)
(* ------------------------------------------------------------------ *)

let[@inline] resolve (unknowns : string array) target =
  if target >= 0 then target
  else trap "jump to unknown label %s" unknowns.(-target - 1)

(* the condition, specialized to a direct comparison at compile time *)
let compile_cond : Mir.Cond.t -> int -> int -> bool = function
  | Mir.Cond.Eq -> fun a b -> a = b
  | Mir.Cond.Ne -> fun a b -> a <> b
  | Mir.Cond.Lt -> fun a b -> a < b
  | Mir.Cond.Le -> fun a b -> a <= b
  | Mir.Cond.Gt -> fun a b -> a > b
  | Mir.Cond.Ge -> fun a b -> a >= b

(* pending = charge batch accumulated over the block body, owed before
   the terminator's own observable behaviour *)
let compile_term cfuncs globals unknowns ~pending_i ~pending_n
    (b : Image.pblock) : blockcode =
  let site = b.Image.pb_site in
  let label = b.Image.pb_label in
  match b.Image.pb_term with
  | Image.Pbr (cond, t, nt, nt_falls) ->
    let eval_cond = compile_cond cond in
    let chg = pending_i + 1 in
    let pn = pending_n in
    (* the delay slot behaves differently on the two arms when annulled *)
    let delay_taken, delay_not_taken =
      if b.Image.pb_annul then
        match b.Image.pb_delay with
        | Some i ->
          ((compile_delay_insn cfuncs globals i : code), fun _ _ -> ())
        | None ->
          let nop st _ = charge_nop st in
          ((nop : code), (nop : code))
      else
        let d = compile_delay cfuncs globals b.Image.pb_delay in
        (d, d)
    in
    fun st regs ->
      flush st chg pn;
      let c = st.counters in
      c.Counters.cond_branches <- c.Counters.cond_branches + 1;
      let taken = eval_cond st.cc_a st.cc_b in
      if taken then begin
        c.Counters.taken_branches <- c.Counters.taken_branches + 1;
        (match st.sink with
        | Predictor.Sink_none -> ()
        | Predictor.Sink_bank bk -> Predictor.bank_access bk ~site ~taken:true
        | Predictor.Sink_fun f -> f ~site ~taken:true);
        delay_taken st regs;
        resolve unknowns t
      end
      else begin
        (match st.sink with
        | Predictor.Sink_none -> ()
        | Predictor.Sink_bank bk -> Predictor.bank_access bk ~site ~taken:false
        | Predictor.Sink_fun f -> f ~site ~taken:false);
        delay_not_taken st regs;
        if not nt_falls then charge_layout_jump st;
        resolve unknowns nt
      end
  | Image.Pjmp (target, falls) ->
    if falls then begin
      (* costs nothing; only the body's pending batch is owed *)
      if pending_i = 0 && pending_n = 0 then fun _ _ -> target
      else
        fun st _ ->
          flush st pending_i pending_n;
          target
    end
    else begin
      let d = compile_delay cfuncs globals b.Image.pb_delay in
      let chg = pending_i + 1 in
      fun st regs ->
        flush st chg pending_n;
        st.counters.Counters.jumps <- st.counters.Counters.jumps + 1;
        d st regs;
        resolve unknowns target
    end
  | Image.Pjtab (r, table) ->
    let d = compile_delay cfuncs globals b.Image.pb_delay in
    let chg = pending_i + 1 in
    let n = Array.length table in
    fun st regs ->
      flush st chg pending_n;
      st.counters.Counters.indirect_jumps <-
        st.counters.Counters.indirect_jumps + 1;
      d st regs;
      let idx = Array.unsafe_get regs r in
      if idx < 0 || idx >= n then
        trap "jump table index %d out of bounds (%s)" idx label;
      resolve unknowns (Array.unsafe_get table idx)
  | Image.Pret v ->
    let d = compile_delay cfuncs globals b.Image.pb_delay in
    let chg = pending_i + 1 in
    let set_ret : code =
      match v with
      | None -> fun st _ -> st.ret <- 0
      | Some (Image.Pimm n) -> fun st _ -> st.ret <- n
      | Some (Image.Preg r) ->
        fun st regs -> st.ret <- Array.unsafe_get regs r
    in
    fun st regs ->
      flush st chg pending_n;
      st.counters.Counters.returns <- st.counters.Counters.returns + 1;
      (* the delay slot runs before the return value is read *)
      d st regs;
      set_ret st regs;
      -1
  | Image.Ptrap_term msg ->
    (* uncharged, like the pre-decoded backend; the body's batch is
       still owed so an earlier fuel exhaustion wins as it should *)
    fun st _ ->
      flush st pending_i pending_n;
      raise (Trap msg)
  | Image.Praise_term e ->
    fun st _ ->
      flush st pending_i pending_n;
      raise e

(* ------------------------------------------------------------------ *)
(* Block and program compilation                                       *)
(* ------------------------------------------------------------------ *)

let compile_block cfuncs globals (f : Image.pfunc) (b : Image.pblock) :
    blockcode =
  let unknowns = f.Image.pf_unknown in
  (* walk the body accumulating the pure charge batch; effectful
     instructions force a flush of everything accumulated so far plus
     their own charge *)
  let codes = ref [] in
  let pending_i = ref 0 and pending_n = ref 0 in
  Array.iter
    (fun i ->
      match compile_insn cfuncs globals i with
      | Cnop ->
        incr pending_i;
        incr pending_n
      | Cpure c ->
        incr pending_i;
        codes := c :: !codes
      | Ceff c ->
        codes := c :: flush_code (!pending_i + 1) !pending_n :: !codes;
        pending_i := 0;
        pending_n := 0
      | Cobs c ->
        if !pending_i > 0 || !pending_n > 0 then
          codes := flush_code !pending_i !pending_n :: !codes;
        codes := c :: !codes;
        pending_i := 0;
        pending_n := 0)
    b.Image.pb_insns;
  let term =
    compile_term cfuncs globals unknowns ~pending_i:!pending_i
      ~pending_n:!pending_n b
  in
  let fname = f.Image.pf_name in
  let label = b.Image.pb_label in
  match List.rev !codes with
  | [] ->
    fun st regs ->
      (match st.on_block with
      | Some f -> f ~func:fname ~label
      | None -> ());
      term st regs
  | codes ->
    let body = seq codes in
    fun st regs ->
      (match st.on_block with
      | Some f -> f ~func:fname ~label
      | None -> ());
      body st regs;
      term st regs

let compile (img : Image.t) : t =
  let cfuncs =
    Array.map
      (fun (f : Image.pfunc) ->
        {
          c_name = f.Image.pf_name;
          c_params = f.Image.pf_params;
          c_nregs = f.Image.pf_nregs;
          c_blocks = [||];
        })
      img.Image.funcs
  in
  (* two passes so call closures can capture callee records up front *)
  Array.iteri
    (fun fid (f : Image.pfunc) ->
      cfuncs.(fid).c_blocks <-
        Array.map (compile_block cfuncs img.Image.globals f) f.Image.pf_blocks)
    img.Image.funcs;
  { c_image = img; c_funcs = cfuncs }

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let fresh_memory (img : Image.t) =
  Array.map
    (fun (g : Image.global) ->
      match g.Image.g_init with
      | Some init ->
        let arr = Array.make g.Image.g_size 0 in
        Array.blit init 0 arr 0 (Array.length init);
        arr
      | None -> Array.make g.Image.g_size 0)
    img.Image.globals

let exec ?(config = default_config) ?profile ?(sink = Predictor.Sink_none)
    ?on_block (ct : t) ~input =
  let img = ct.c_image in
  let st =
    {
      memory = fresh_memory img;
      counters = Counters.make ();
      out = Buffer.create 1024;
      input;
      input_pos = 0;
      cc_a = 0;
      cc_b = 0;
      fuel_left = config.fuel;
      depth = 0;
      ret = 0;
      fuel = config.fuel;
      max_depth = config.max_depth;
      profile;
      sink;
      on_block;
      cancel = config.cancel;
    }
  in
  let exit_code =
    try
      if img.Image.main_id < 0 then trap "call to unknown function main";
      let mf = ct.c_funcs.(img.Image.main_id) in
      if st.depth >= st.max_depth then
        trap "call depth exceeded in %s" mf.c_name;
      if Array.length mf.c_params > 0 then
        trap "too few arguments to %s" mf.c_name;
      run_blocks st mf.c_blocks (Array.make (max mf.c_nregs 1) 0)
    with Program_exit code -> code
  in
  { counters = st.counters; output = Buffer.contents st.out; exit_code }

let run_image ?config ?profile ?on_branch ?on_block img ~input =
  let sink =
    match on_branch with
    | Some f -> Predictor.Sink_fun f
    | None -> Predictor.Sink_none
  in
  exec ?config ?profile ~sink ?on_block (compile img) ~input

let run ?config ?profile ?on_branch ?on_block p ~input =
  run_image ?config ?profile ?on_branch ?on_block (Image.build p) ~input
