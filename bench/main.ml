(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 9).

     Table 3      the benchmark programs
     Table 4      dynamic instruction/branch changes per heuristic set
     Table 5      (0,2) 2048-entry branch prediction measurements
     Table 6      predictor sweep ((0,1),(0,2) x 32..2048 entries)
     Table 7      execution time (cycle model) + Bechamel wall-clock
     Table 8      static measurements
     Figures 11-13  sequence length distributions per heuristic set

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --fast       # smaller inputs
     dune exec bench/main.exe -- table4 figs  # selected sections
     dune exec bench/main.exe -- backends     # execution-backend race
     dune exec bench/main.exe -- detection    # syntactic vs facts walk
     dune exec bench/main.exe -- ablations    # design-choice ablations
     dune exec bench/main.exe -- static       # static vs trained profile
                                              # (writes BENCH_PR9.json)
     dune exec bench/main.exe -- -j 8         # domain-pool width
     dune exec bench/main.exe -- --seq        # sequential harness
     dune exec bench/main.exe -- --verify     # translation-validate every
                                              # matrix pipeline (lib/check)

   The 17-workload matrix of each heuristic set is fanned out across
   OCaml 5 domains (Driver.Pool) under the guarded runner: a workload
   that crashes or times out is contained (with --timeout-ms/--retries
   honoured), its section cells print `-', and the partial results
   stand.  The `speedup' section re-runs the set-I matrix sequentially,
   and the `backends' section races the reference, pre-decoded and
   closure-compiled execution engines over the suite's measure stage.
   All wall times land in BENCH_PR6.json together with per-workload
   dynamic counts, per-job outcome tallies (ok/retried/degraded/...)
   and the detection-coverage comparison of the syntactic vs the
   interval-facts sequence walk (`detection' section).

   Shapes, not absolute numbers, are the reproduction target; see
   EXPERIMENTS.md for the paper-vs-measured discussion. *)

let fast = ref false
let sections = ref []
let seq = ref false
let jobs_flag = ref None
let json_path = ref "BENCH_PR6.json"
let no_json = ref false
let timeout_ms = ref None
let retries = ref 0

(* --verify: run the translation validator inside every matrix pipeline
   (Pipeline.run fails the job on any rejection), so a bench run
   self-certifies the numbers it reports *)
let verify = ref false

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i =
    if i + n > h then false
    else if String.sub haystack i n = needle then true
    else go (i + 1)
  in
  n = 0 || go 0

let want name =
  !sections = [] || List.mem name !sections

(* ------------------------------------------------------------------ *)
(* Running the pipeline over the workload matrix                       *)
(* ------------------------------------------------------------------ *)

type row = {
  workload : Workloads.Spec.t;
  result : Driver.Pipeline.result;
  seconds : float;  (* wall clock of this workload's pipeline run *)
}

let truncate_input s = if !fast then String.sub s 0 (min 6000 (String.length s)) else s

let domains () =
  if !seq then 1
  else match !jobs_flag with Some n -> n | None -> Driver.Pool.default_domains ()

(* jobs are built in the parent so the lazy inputs are forced exactly
   once, before any domain fan-out *)
let jobs_for config =
  List.map
    (fun (w : Workloads.Spec.t) ->
      Driver.Pipeline.job ~config ~name:w.Workloads.Spec.name
        ~source:w.Workloads.Spec.source
        ~training_input:
          (truncate_input (Lazy.force w.Workloads.Spec.training_input))
        ~test_input:(truncate_input (Lazy.force w.Workloads.Spec.test_input))
        ())
    Workloads.Registry.all

(* per heuristic set: rows + the wall clock of the whole matrix *)
let matrix : (string, row list * float) Hashtbl.t = Hashtbl.create 4

(* per heuristic set: every job's structured outcome, for the JSON
   tallies and the missing-workload markers *)
let outcomes_memo : (string, Driver.Pipeline.job_outcome list) Hashtbl.t =
  Hashtbl.create 4

let run_matrix hs ~domains =
  if domains = 1 && Domain.recommended_domain_count () > 1 && not !seq then
    Printf.eprintf
      "[bench] WARNING: the domain pool is effectively sequential (1 domain \
       on a machine with %d recommended); wall-clock numbers will not show \
       fan-out\n%!"
      (Domain.recommended_domain_count ());
  let config =
    {
      Driver.Config.default with
      Driver.Config.heuristic = hs;
      Driver.Config.verify = !verify;
    }
  in
  let jobs = jobs_for config in
  Printf.eprintf
    "[bench] running the 17 workloads under heuristic set %s on %d domain(s)...\n%!"
    hs.Mopt.Switch_lower.hs_name domains;
  let policy =
    {
      Driver.Guard.default with
      Driver.Guard.timeout_ms = !timeout_ms;
      retries = !retries;
      degrade = true;
    }
  in
  let t0 = Unix.gettimeofday () in
  let outcomes = Driver.Pipeline.run_jobs_guarded ~domains ~policy jobs in
  let wall = Unix.gettimeofday () -. t0 in
  Hashtbl.replace outcomes_memo hs.Mopt.Switch_lower.hs_name outcomes;
  (* failed workloads are contained, not fatal: their rows are dropped,
     their section cells print `-', and the partial results stand *)
  let rows =
    List.concat
      (List.map2
         (fun w (o : Driver.Pipeline.job_outcome) ->
           match o.Driver.Pipeline.o_outcome with
           | Driver.Pool.Ok result ->
             [ { workload = w; result; seconds = o.Driver.Pipeline.o_seconds } ]
           | out ->
             Printf.eprintf
               "[bench] WARNING: workload %s (set %s) failed (%s: %s); its \
                cells will be missing\n%!"
               w.Workloads.Spec.name hs.Mopt.Switch_lower.hs_name
               (Driver.Pool.outcome_status out)
               (Driver.Pool.outcome_message out);
             [])
         Workloads.Registry.all outcomes)
  in
  (rows, wall)

let rows_with_wall hs =
  match Hashtbl.find_opt matrix hs.Mopt.Switch_lower.hs_name with
  | Some rw -> rw
  | None ->
    let rw = run_matrix hs ~domains:(domains ()) in
    Hashtbl.replace matrix hs.Mopt.Switch_lower.hs_name rw;
    rw

let rows_for hs = fst (rows_with_wall hs)

let counters_of (v : Driver.Pipeline.version) = v.Driver.Pipeline.v_counters
let orig r = r.result.Driver.Pipeline.r_original
let reord r = r.result.Driver.Pipeline.r_reordered
let pct = Driver.Pipeline.pct

let line width = print_endline (String.make width '-')

let section title =
  Printf.printf "\n\n===== %s =====\n\n" title

let average xs =
  match xs with
  | [] -> 0.0
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* ------------------------------------------------------------------ *)
(* Table 3                                                             *)
(* ------------------------------------------------------------------ *)

let table3 () =
  section "Table 3: Test Programs";
  Printf.printf "%-8s %s\n" "Program" "Description";
  line 60;
  List.iter
    (fun (w : Workloads.Spec.t) ->
      Printf.printf "%-8s %s\n" w.Workloads.Spec.name w.Workloads.Spec.description)
    Workloads.Registry.all

(* ------------------------------------------------------------------ *)
(* Table 4                                                             *)
(* ------------------------------------------------------------------ *)

let table4 () =
  section "Table 4: Dynamic Frequency Measurements";
  List.iter
    (fun hs ->
      let rows = rows_for hs in
      Printf.printf "\n--- heuristic set %s ---\n" hs.Mopt.Switch_lower.hs_name;
      Printf.printf "%-8s %12s %10s %10s\n" "Program" "Orig Insts"
        "Insts" "Branches";
      line 46;
      let d_insts = ref [] and d_branches = ref [] and o_insts = ref [] in
      List.iter
        (fun r ->
          let o = counters_of (orig r) and n = counters_of (reord r) in
          let di = pct o.Sim.Counters.insns n.Sim.Counters.insns in
          let db = pct o.Sim.Counters.cond_branches n.Sim.Counters.cond_branches in
          d_insts := di :: !d_insts;
          d_branches := db :: !d_branches;
          o_insts := float_of_int o.Sim.Counters.insns :: !o_insts;
          Printf.printf "%-8s %12d %+9.2f%% %+9.2f%%\n" r.workload.Workloads.Spec.name
            o.Sim.Counters.insns di db)
        rows;
      line 46;
      Printf.printf "%-8s %12.0f %+9.2f%% %+9.2f%%\n" "average"
        (average !o_insts) (average !d_insts) (average !d_branches))
    Mopt.Switch_lower.all_sets

(* ------------------------------------------------------------------ *)
(* Tables 5 and 6: branch prediction                                   *)
(* ------------------------------------------------------------------ *)

let mispred_of v key = List.assoc key v.Driver.Pipeline.v_mispredicts

(* instructions-saved to mispredictions-added ratio, N/A when
   mispredictions decreased (paper Table 5's last column) *)
let ratio r key =
  let o = orig r and n = reord r in
  let dm = mispred_of n key - mispred_of o key in
  if dm <= 0 then None
  else
    Some
      (float_of_int
         ((counters_of o).Sim.Counters.insns - (counters_of n).Sim.Counters.insns)
      /. float_of_int dm)

let table5 () =
  section "Table 5: Branch Prediction Measurements ((0,2), 2048 entries, set I)";
  let key = (0, 2, 2048) in
  let rows = rows_for Mopt.Switch_lower.set_i in
  Printf.printf "%-8s %12s %12s %12s\n" "Program" "Orig Mispred" "Change"
    "Inst Ratio";
  line 50;
  let deltas = ref [] and ratios = ref [] in
  List.iter
    (fun r ->
      let o = mispred_of (orig r) key in
      let d = pct o (mispred_of (reord r) key) in
      deltas := d :: !deltas;
      let ratio_str =
        match ratio r key with
        | Some x ->
          ratios := x :: !ratios;
          Printf.sprintf "%.2f" x
        | None -> "N/A"
      in
      Printf.printf "%-8s %12d %+11.2f%% %12s\n" r.workload.Workloads.Spec.name o d
        ratio_str)
    rows;
  line 50;
  Printf.printf "%-8s %12s %+11.2f%% %12.2f\n" "average" "" (average !deltas)
    (average !ratios)

let table6 () =
  section "Table 6: Branch Prediction Across Predictors (set I)";
  Printf.printf "%8s | %21s | %21s\n" "" "(0,1) predictor" "(0,2) predictor";
  Printf.printf "%8s | %10s %10s | %10s %10s\n" "Entries" "Mispred"
    "Inst Ratio" "Mispred" "Inst Ratio";
  line 58;
  let rows = rows_for Mopt.Switch_lower.set_i in
  let summarize key =
    let deltas =
      List.map (fun r -> pct (mispred_of (orig r) key) (mispred_of (reord r) key)) rows
    in
    let ratios = List.filter_map (fun r -> ratio r key) rows in
    (average deltas, average ratios)
  in
  let avg1 = ref [] and avg2 = ref [] in
  List.iter
    (fun entries ->
      let d1, r1 = summarize (0, 1, entries) in
      let d2, r2 = summarize (0, 2, entries) in
      avg1 := (d1, r1) :: !avg1;
      avg2 := (d2, r2) :: !avg2;
      Printf.printf "%8d | %+9.2f%% %10.2f | %+9.2f%% %10.2f\n" entries d1 r1 d2 r2)
    [ 32; 64; 128; 256; 512; 1024; 2048 ];
  line 58;
  let avg l f = average (List.map f l) in
  Printf.printf "%8s | %+9.2f%% %10.2f | %+9.2f%% %10.2f\n" "average"
    (avg !avg1 fst) (avg !avg1 snd) (avg !avg2 fst) (avg !avg2 snd)

(* ------------------------------------------------------------------ *)
(* Table 7: execution time                                             *)
(* ------------------------------------------------------------------ *)

let table7 () =
  section "Table 7: Execution Time (simulated cycles)";
  (* the paper pairs machines with translation heuristics: the IPC and
     the SPARC 20 used set I, the Ultra 1 used set II *)
  let pairs =
    [ (Sim.Cycle_model.sparc_ipc, Mopt.Switch_lower.set_i);
      (Sim.Cycle_model.sparc_20, Mopt.Switch_lower.set_i);
      (Sim.Cycle_model.sparc_ultra1, Mopt.Switch_lower.set_ii) ]
  in
  Printf.printf "%-8s" "Program";
  List.iter
    (fun ((m : Sim.Cycle_model.params), hs) ->
      Printf.printf " %19s" (Printf.sprintf "%s (set %s)" m.Sim.Cycle_model.model_name
                               hs.Mopt.Switch_lower.hs_name))
    pairs;
  print_newline ();
  line 70;
  let averages = Array.make (List.length pairs) [] in
  List.iter
    (fun (w : Workloads.Spec.t) ->
      Printf.printf "%-8s" w.Workloads.Spec.name;
      List.iteri
        (fun i ((m : Sim.Cycle_model.params), hs) ->
          let rows = rows_for hs in
          match
            List.find_opt
              (fun row ->
                String.equal row.workload.Workloads.Spec.name
                  w.Workloads.Spec.name)
              rows
          with
          | None ->
            (* the workload's pipeline failed under this set; its cell
               is marked missing rather than aborting the table *)
            Printf.printf " %19s" "-"
          | Some r ->
            let model = m.Sim.Cycle_model.model_name in
            let oc = List.assoc model (orig r).Driver.Pipeline.v_cycles in
            let nc = List.assoc model (reord r).Driver.Pipeline.v_cycles in
            let d = pct oc nc in
            averages.(i) <- d :: averages.(i);
            Printf.printf " %+18.2f%%" d)
        pairs;
      print_newline ())
    Workloads.Registry.all;
  line 70;
  Printf.printf "%-8s" "average";
  Array.iter (fun ds -> Printf.printf " %+18.2f%%" (average ds)) averages;
  print_newline ()

(* Bechamel wall-clock companion to Table 7: the simulator's real run
   time is proportional to the dynamic instruction count, so timing the
   simulation of the original vs the reordered binary is this
   reproduction's analogue of the paper's `times()' measurements. *)
let bechamel_table7 () =
  section "Table 7 (companion): Bechamel wall-clock of simulated runs (set I)";
  let rows = rows_for Mopt.Switch_lower.set_i in
  let chosen = [ "wc"; "grep"; "sort"; "lex" ] in
  let tests =
    List.concat_map
      (fun r ->
        if not (List.mem r.workload.Workloads.Spec.name chosen) then []
        else begin
          let input =
            truncate_input (Lazy.force r.workload.Workloads.Spec.test_input)
          in
          let make label prog =
            (* pre-build the image so the lowering is amortized and the
               measured quantity is the pure simulation loop *)
            let image = Sim.Image.build prog in
            Bechamel.Test.make
              ~name:(r.workload.Workloads.Spec.name ^ "/" ^ label)
              (Bechamel.Staged.stage (fun () ->
                   ignore (Sim.Machine.run_image image ~input)))
          in
          [ make "original" (orig r).Driver.Pipeline.v_program;
            make "reordered" (reord r).Driver.Pipeline.v_program ]
        end)
      rows
  in
  let cfg =
    Bechamel.Benchmark.cfg ~limit:50
      ~quota:(Bechamel.Time.second (if !fast then 0.2 else 0.5))
      ~kde:None ()
  in
  let raw =
    Bechamel.Benchmark.all cfg
      [ Bechamel.Toolkit.Instance.monotonic_clock ]
      (Bechamel.Test.make_grouped ~name:"table7" tests)
  in
  let ols =
    Bechamel.Analyze.all
      (Bechamel.Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| "run" |])
      Bechamel.Toolkit.Instance.monotonic_clock raw
  in
  let time_of name =
    Hashtbl.fold
      (fun key v acc ->
        if contains key name then
          match Bechamel.Analyze.OLS.estimates v with
          | Some (t :: _) -> Some t
          | _ -> acc
        else acc)
      ols None
  in
  Printf.printf "%-8s %15s %15s %10s\n" "Program" "original (ms)"
    "reordered (ms)" "change";
  line 52;
  List.iter
    (fun name ->
      match
        ( time_of (name ^ "/original"),
          time_of (name ^ "/reordered") )
      with
      | Some o, Some n ->
        Printf.printf "%-8s %15.3f %15.3f %+9.2f%%\n" name (o /. 1e6) (n /. 1e6)
          (100.0 *. (n -. o) /. o)
      | _ -> Printf.printf "%-8s (no estimate)\n" name)
    chosen

(* ------------------------------------------------------------------ *)
(* Table 8: static measurements                                        *)
(* ------------------------------------------------------------------ *)

let table8 () =
  section "Table 8: Static Measurements";
  List.iter
    (fun hs ->
      let rows = rows_for hs in
      Printf.printf "\n--- heuristic set %s ---\n" hs.Mopt.Switch_lower.hs_name;
      Printf.printf "%-8s %8s %10s %10s %10s %10s\n" "Program" "Insts"
        "Total Seqs" "Reordered" "Avg Before" "Avg After";
      line 62;
      let all_stats = ref None in
      let d_static = ref [] in
      List.iter
        (fun r ->
          let s = r.result.Driver.Pipeline.r_stats in
          let ds =
            pct (orig r).Driver.Pipeline.v_static_insns
              (reord r).Driver.Pipeline.v_static_insns
          in
          d_static := ds :: !d_static;
          all_stats :=
            Some
              (match !all_stats with
              | None -> s
              | Some acc -> Reorder.Stats.merge acc s);
          Printf.printf "%-8s %+7.2f%% %10d %9.2f%% %10.2f %10.2f\n"
            r.workload.Workloads.Spec.name ds s.Reorder.Stats.total_seqs
            (if s.Reorder.Stats.total_seqs = 0 then 0.0
             else
               100.0
               *. float_of_int s.Reorder.Stats.reordered_seqs
               /. float_of_int s.Reorder.Stats.total_seqs)
            s.Reorder.Stats.avg_len_before s.Reorder.Stats.avg_len_after)
        rows;
      line 62;
      match !all_stats with
      | Some s ->
        Printf.printf "%-8s %+7.2f%% %10d %9.2f%% %10.2f %10.2f\n" "total"
          (average !d_static) s.Reorder.Stats.total_seqs
          (100.0
          *. float_of_int s.Reorder.Stats.reordered_seqs
          /. float_of_int (max 1 s.Reorder.Stats.total_seqs))
          s.Reorder.Stats.avg_len_before s.Reorder.Stats.avg_len_after
      | None -> ())
    Mopt.Switch_lower.all_sets

(* ------------------------------------------------------------------ *)
(* Figures 11-13                                                       *)
(* ------------------------------------------------------------------ *)

let histogram title lengths =
  Printf.printf "%s (avg %.2f)\n" title
    (if lengths = [] then 0.0
     else
       float_of_int (List.fold_left ( + ) 0 lengths)
       /. float_of_int (List.length lengths));
  let h = Reorder.Stats.histogram lengths in
  let maxc = List.fold_left (fun m (_, c) -> max m c) 1 h in
  List.iter
    (fun (len, count) ->
      let bar = String.make (max 1 (count * 40 / maxc)) '#' in
      Printf.printf "  %3d | %-40s %d\n" len bar count)
    h

let figures () =
  List.iter2
    (fun hs fig ->
      section
        (Printf.sprintf "Figure %d: Sequence Lengths for Heuristic Set %s" fig
           hs.Mopt.Switch_lower.hs_name);
      let rows = rows_for hs in
      let stats =
        List.fold_left
          (fun acc r -> Reorder.Stats.merge acc r.result.Driver.Pipeline.r_stats)
          (Reorder.Stats.of_report { Reorder.Pass.seq_reports = [] })
          rows
      in
      histogram "Original sequence length (branches)"
        stats.Reorder.Stats.orig_branch_lengths;
      print_newline ();
      histogram "Reordered sequence length (branches)"
        stats.Reorder.Stats.final_branch_lengths)
    Mopt.Switch_lower.all_sets [ 11; 12; 13 ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations (set I): design choices from DESIGN.md";
  let variants =
    [
      ("full transformation", Driver.Config.default);
      ( "no redundant-cmp elimination",
        {
          Driver.Config.default with
          Driver.Config.apply_options =
            { Reorder.Apply.default_options with Reorder.Apply.improve_cmp = false };
        } );
      ( "no Form-4 bound ordering",
        {
          Driver.Config.default with
          Driver.Config.apply_options =
            { Reorder.Apply.default_options with Reorder.Apply.improve_form4 = false };
        } );
      ( "no tail duplication",
        {
          Driver.Config.default with
          Driver.Config.apply_options =
            { Reorder.Apply.default_options with Reorder.Apply.tail_dup_limit = 0 };
        } );
      ( "keep original default target",
        { Driver.Config.default with Driver.Config.keep_original_default = true } );
      ( "exhaustive selection",
        { Driver.Config.default with Driver.Config.selector = `Exhaustive } );
      ( "with common-successor runs (Sec. 10)",
        { Driver.Config.default with Driver.Config.common_succ = true } );
      ( "reorder-vs-indirect decision (IPC)",
        {
          Driver.Config.default with
          Driver.Config.coalesce_machine = Some Sim.Cycle_model.sparc_ipc;
        } );
      ( "no fill-from-successor delay slots",
        { Driver.Config.default with Driver.Config.delay_fill_from_target = false } );
      ( "with profile-guided layout",
        { Driver.Config.default with Driver.Config.profile_layout = true } );
      ( "reorder-vs-indirect decision (Ultra 1)",
        {
          Driver.Config.default with
          Driver.Config.coalesce_machine = Some Sim.Cycle_model.sparc_ultra1;
        } );
    ]
  in
  let chosen = [ "wc"; "sort"; "lex"; "cpp"; "grep" ] in
  Printf.printf "%-38s" "Variant";
  List.iter (Printf.printf " %9s") chosen;
  print_newline ();
  line 88;
  List.iter
    (fun (label, config) ->
      Printf.printf "%-38s%!" label;
      let jobs =
        List.map
          (fun name ->
            let w = Workloads.Registry.find name in
            Driver.Pipeline.job ~config ~name:w.Workloads.Spec.name
              ~source:w.Workloads.Spec.source
              ~training_input:
                (truncate_input (Lazy.force w.Workloads.Spec.training_input))
              ~test_input:
                (truncate_input (Lazy.force w.Workloads.Spec.test_input))
              ())
          chosen
      in
      let results = Driver.Pipeline.run_jobs ~domains:(domains ()) jobs in
      List.iter
        (fun ((r : Driver.Pipeline.result), _) ->
          let d =
            pct
              r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters
                .Sim.Counters.insns
              r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
                .Sim.Counters.insns
          in
          Printf.printf " %+8.2f%%" d)
        results;
      print_newline ())
    variants

(* ------------------------------------------------------------------ *)
(* Detection coverage: syntactic walk vs interval-facts walk           *)
(* ------------------------------------------------------------------ *)

(* (workload, heuristic set) -> (syntactic seqs, syntactic tests,
   facts seqs, facts tests); memoized because write_json wants the
   set-I numbers whether or not the section ran *)
let detect_memo : (string * string, int * int * int * int) Hashtbl.t =
  Hashtbl.create 64

let detect_counts (w : Workloads.Spec.t) hs =
  let key = (w.Workloads.Spec.name, hs.Mopt.Switch_lower.hs_name) in
  match Hashtbl.find_opt detect_memo key with
  | Some c -> c
  | None ->
    let count facts =
      let prog = Minic.Lower.compile w.Workloads.Spec.source in
      Mopt.Switch_lower.lower_program hs prog;
      Mopt.Cleanup.run prog;
      let seqs = Reorder.Detect.find_program ~facts prog in
      ( List.length seqs,
        List.fold_left (fun a s -> a + Reorder.Detect.items_count s) 0 seqs )
    in
    let ss, st = count false and fs, ft = count true in
    let c = (ss, st, fs, ft) in
    Hashtbl.replace detect_memo key c;
    c

let detection () =
  section "Detection coverage: syntactic vs interval-facts walk";
  List.iter
    (fun hs ->
      Printf.printf "set %s\n" hs.Mopt.Switch_lower.hs_name;
      Printf.printf "  %-8s %14s %14s %8s\n" "program" "syntactic" "facts"
        "extra";
      List.iter
        (fun w ->
          let ss, st, fs, ft = detect_counts w hs in
          Printf.printf "  %-8s %6d seq %3d t %6d seq %3d t %+5d seq %+4d t\n"
            w.Workloads.Spec.name ss st fs ft (fs - ss) (ft - st))
        Workloads.Registry.all)
    [ Mopt.Switch_lower.set_i; Mopt.Switch_lower.set_ii;
      Mopt.Switch_lower.set_iii ];
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Execution backends: reference vs pre-decoded vs closure-compiled    *)
(* ------------------------------------------------------------------ *)

let backend_name = function
  | `Reference -> "reference"
  | `Predecoded -> "predecoded"
  | `Compiled -> "compiled"
  | `Native -> "native"

(* (backend name, best-of-N measure-stage wall seconds), for the JSON *)
let backend_results : (string * float) list ref = ref []
let runs_per_engine = 3

(* native backend extras for the JSON: first-sweep wall (codegen +
   compile + load, paid once per machine thanks to the artifact store)
   and the cache counters after the whole section *)
let native_codegen_seconds : float option ref = ref None
let native_cache_stats : Sim.Native.stats option ref = ref None

(* Race the execution engines over the suite's measure stage: both
   finalized versions of every set-I workload, full predictor bank
   attached, exactly what `Pipeline.run's measure stage does.  Each
   engine runs the sweep [runs_per_engine] times and reports the min —
   single-shot walls drifted by several percent between otherwise
   identical runs (1.10x in BENCH_PR2 vs 1.036x in BENCH_PR5), and the
   min is the standard noise-robust estimator for a deterministic
   workload.  The native engine pays code generation in an extra
   untimed first sweep, reported separately: steady state is what the
   "compile once, serve many" store delivers to every later process.
   Every backend must agree on every observable — counters,
   mispredicts, output, exit code — or the section aborts. *)
let backends_section () =
  section "Execution backends: suite measure-stage wall clock (set I)";
  let rows = rows_for Mopt.Switch_lower.set_i in
  let programs =
    List.concat_map
      (fun r ->
        let input =
          truncate_input (Lazy.force r.workload.Workloads.Spec.test_input)
        in
        [ (r.workload.Workloads.Spec.name ^ "/original",
           (orig r).Driver.Pipeline.v_program, input);
          (r.workload.Workloads.Spec.name ^ "/reordered",
           (reord r).Driver.Pipeline.v_program, input) ])
      rows
  in
  let engines =
    [ `Reference; `Predecoded; `Compiled ]
    @ (if Sim.Native.available () then [ `Native ] else [])
  in
  if not (Sim.Native.available ()) then
    Printf.eprintf
      "[bench] native backend unavailable on this host; racing three \
       engines\n%!";
  let sweep config bank =
    let t0 = Unix.gettimeofday () in
    let versions =
      List.map
        (fun (_, prog, input) -> Driver.Pipeline.measure config ~bank prog ~input)
        programs
    in
    (Unix.gettimeofday () -. t0, versions)
  in
  let run_all backend =
    let config = { Driver.Config.default with Driver.Config.backend } in
    Printf.eprintf "[bench] measuring %d programs under the %s backend...\n%!"
      (List.length programs) (backend_name backend);
    (* one bank reused (reset) across the whole sweep, as the pipeline's
       measure stage reuses one across its original/reordered pair *)
    let bank = Sim.Predictor.bank Driver.Config.default.Driver.Config.predictors in
    (* the native engine's first sweep generates, compiles and dynlinks
       every image (or loads it from the artifact store); report that
       separately and keep it out of the steady-state timings *)
    if backend = `Native then begin
      Sim.Native.reset_stats ();
      let codegen_wall, _ = sweep config bank in
      native_codegen_seconds := Some codegen_wall
    end;
    let best = ref infinity and last = ref [] in
    for _ = 1 to runs_per_engine do
      let wall, versions = sweep config bank in
      if wall < !best then best := wall;
      last := versions
    done;
    if backend = `Native then native_cache_stats := Some (Sim.Native.stats ());
    (!best, !last)
  in
  let timed =
    List.map
      (fun b ->
        let wall, versions = run_all b in
        (b, wall, versions))
      engines
  in
  (* cross-check the fast backends against the reference sweep *)
  (match timed with
  | (_, _, oracle) :: rest ->
    List.iter
      (fun (b, _, versions) ->
        List.iteri
          (fun i (v : Driver.Pipeline.version) ->
            let o = List.nth oracle i in
            let name, _, _ = List.nth programs i in
            if
              v.Driver.Pipeline.v_counters <> o.Driver.Pipeline.v_counters
              || v.Driver.Pipeline.v_mispredicts
                 <> o.Driver.Pipeline.v_mispredicts
              || (not
                    (String.equal v.Driver.Pipeline.v_output
                       o.Driver.Pipeline.v_output))
              || v.Driver.Pipeline.v_exit_code <> o.Driver.Pipeline.v_exit_code
            then
              failwith
                (Printf.sprintf "backend %s disagrees with reference on %s"
                   (backend_name b) name))
          versions)
      rest
  | [] -> ());
  backend_results := List.map (fun (b, w, _) -> (backend_name b, w)) timed;
  let wall_of name = List.assoc name !backend_results in
  let compiled = wall_of "compiled" in
  Printf.printf "best of %d timed sweeps per engine\n" runs_per_engine;
  Printf.printf "%-12s %12s %14s\n" "backend" "measure wall" "vs compiled";
  line 40;
  List.iter
    (fun (b, w, _) ->
      Printf.printf "%-12s %11.3fs %13.2fx\n" (backend_name b) w
        (w /. Float.max 1e-9 compiled))
    timed;
  line 40;
  let pre = wall_of "predecoded" in
  if compiled < pre then
    Printf.printf
      "compiled beats predecoded by %.2fx on the suite measure stage\n"
      (pre /. Float.max 1e-9 compiled)
  else
    Printf.printf
      "WARNING: compiled (%.3fs) did not beat predecoded (%.3fs) on this run\n"
      compiled pre;
  match List.assoc_opt "native" !backend_results with
  | None -> ()
  | Some nat ->
    let refw = wall_of "reference" in
    let speedup = refw /. Float.max 1e-9 nat in
    (match !native_codegen_seconds with
    | Some c ->
      Printf.printf "native codegen+load sweep (excluded): %.3fs\n" c
    | None -> ());
    (match !native_cache_stats with
    | Some st ->
      Printf.printf
        "native cache: %d memo hit(s), %d disk hit(s), %d miss(es), %d \
         compile(s)\n"
        st.Sim.Native.memo_hits st.Sim.Native.disk_hits st.Sim.Native.misses
        st.Sim.Native.compiles
    | None -> ());
    if speedup >= 5.0 then
      Printf.printf "native beats reference by %.2fx on the measure stage\n"
        speedup
    else
      Printf.printf
        "WARNING: native (%.3fs) is only %.2fx over reference (%.3fs), \
         target is 5x\n"
        nat speedup refw

(* ------------------------------------------------------------------ *)
(* Harness speedup: domain fan-out vs sequential                       *)
(* ------------------------------------------------------------------ *)

(* (parallel wall, domains, sequential wall) of the set-I matrix *)
let speedup_data : (float * int * float) option ref = ref None

let speedup () =
  section "Harness: parallel (domains) vs sequential wall clock (set I)";
  let d = domains () in
  let _, par_wall = rows_with_wall Mopt.Switch_lower.set_i in
  let _, seq_wall =
    if d = 1 then
      (* the matrix already ran on one domain; don't run it twice *)
      rows_with_wall Mopt.Switch_lower.set_i
    else run_matrix Mopt.Switch_lower.set_i ~domains:1
  in
  speedup_data := Some (par_wall, d, seq_wall);
  Printf.printf "cores (recommended domains): %d\n"
    (Domain.recommended_domain_count ());
  Printf.printf "parallel   (%2d domains): %8.2fs\n" d par_wall;
  Printf.printf "sequential ( 1 domain ): %8.2fs\n" seq_wall;
  Printf.printf "speedup: %.2fx\n" (seq_wall /. Float.max 1e-9 par_wall)

(* ------------------------------------------------------------------ *)
(* BENCH_PR2.json: the machine-readable perf trajectory record         *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let write_json ~harness_wall () =
  match Hashtbl.find_opt matrix Mopt.Switch_lower.set_i.Mopt.Switch_lower.hs_name with
  | None -> ()  (* no set-I rows were computed; nothing to record *)
  | Some (rows, matrix_wall) ->
    let oc = open_out !json_path in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n";
    p "  \"pr\": 6,\n";
    p "  \"heuristic_set\": \"I\",\n";
    p "  \"fast\": %b,\n" !fast;
    p "  \"cores\": %d,\n" (Domain.recommended_domain_count ());
    p "  \"domains\": %d,\n" (domains ());
    p "  \"recommended_domains\": %d,\n" (Domain.recommended_domain_count ());
    (* the pool never uses more domains than there are jobs *)
    p "  \"effective_domains\": %d,\n" (min (domains ()) (List.length rows));
    p "  \"harness_wall_seconds\": %.3f,\n" harness_wall;
    p "  \"matrix_wall_seconds\": %.3f,\n" matrix_wall;
    (match !speedup_data with
    | Some (par, d, seqw) ->
      p "  \"parallel_wall_seconds\": %.3f,\n" par;
      p "  \"parallel_domains\": %d,\n" d;
      p "  \"sequential_wall_seconds\": %.3f,\n" seqw;
      p "  \"speedup\": %.3f,\n" (seqw /. Float.max 1e-9 par)
    | None -> ());
    (match
       Hashtbl.find_opt outcomes_memo
         Mopt.Switch_lower.set_i.Mopt.Switch_lower.hs_name
     with
    | None -> ()
    | Some outcomes ->
      let count p = List.length (List.filter p outcomes) in
      let status s (o : Driver.Pipeline.job_outcome) =
        String.equal (Driver.Pool.outcome_status o.Driver.Pipeline.o_outcome) s
      in
      p
        "  \"outcomes\": {\"ok\": %d, \"retried\": %d, \"degraded\": %d, \
         \"timeout\": %d, \"trap\": %d, \"crash\": %d, \"gave_up\": %d},\n"
        (count (status "ok"))
        (count (fun o ->
             status "ok" o && o.Driver.Pipeline.o_retried > 0))
        (count (fun o -> o.Driver.Pipeline.o_degraded))
        (count (status "timeout"))
        (count (status "trap"))
        (count (status "crash"))
        (count (status "gave_up"));
      p "  \"missing\": [%s],\n"
        (String.concat ", "
           (List.filter_map
              (fun (o : Driver.Pipeline.job_outcome) ->
                if Driver.Pool.outcome_ok o.Driver.Pipeline.o_outcome then None
                else
                  Some
                    (Printf.sprintf "\"%s\""
                       (json_escape o.Driver.Pipeline.o_name)))
              outcomes)));
    (match !backend_results with
    | [] -> ()
    | l ->
      p "  \"backends\": {";
      p "\"runs_per_engine\": %d, " runs_per_engine;
      List.iteri
        (fun i (name, w) ->
          p "%s\"%s_measure_seconds\": %.3f" (if i = 0 then "" else ", ") name w)
        l;
      (match (List.assoc_opt "compiled" l, List.assoc_opt "predecoded" l,
              List.assoc_opt "reference" l) with
      | Some c, Some pre, Some refw ->
        p ", \"compiled_vs_predecoded_speedup\": %.3f" (pre /. Float.max 1e-9 c);
        p ", \"compiled_vs_reference_speedup\": %.3f" (refw /. Float.max 1e-9 c)
      | _ -> ());
      (match (List.assoc_opt "native" l, List.assoc_opt "reference" l) with
      | Some n, Some refw ->
        p ", \"native_vs_reference_speedup\": %.3f" (refw /. Float.max 1e-9 n);
        (match !native_codegen_seconds with
        | Some c -> p ", \"native_codegen_seconds\": %.3f" c
        | None -> ());
        (match !native_cache_stats with
        | Some st ->
          p
            ", \"native_cache\": {\"memo_hits\": %d, \"disk_hits\": %d, \
             \"misses\": %d, \"compiles\": %d}"
            st.Sim.Native.memo_hits st.Sim.Native.disk_hits
            st.Sim.Native.misses st.Sim.Native.compiles
        | None -> ())
      | _ -> ());
      p ", \"native_available\": %b" (Sim.Native.available ());
      p "},\n");
    p "  \"workloads\": [\n";
    let nrows = List.length rows in
    List.iteri
      (fun i r ->
        let o = counters_of (orig r) and n = counters_of (reord r) in
        let ss, st, fs, ft =
          detect_counts r.workload Mopt.Switch_lower.set_i
        in
        p
          "    {\"name\": \"%s\", \"orig_insns\": %d, \"reord_insns\": %d, \
           \"insn_reduction_pct\": %.3f, \"orig_branches\": %d, \
           \"reord_branches\": %d, \"branch_reduction_pct\": %.3f, \
           \"seqs_syntactic\": %d, \"tests_syntactic\": %d, \
           \"seqs_facts\": %d, \"tests_facts\": %d, \
           \"extra_facts_seqs\": %d, \"reordered\": %d, \
           \"pipeline_seconds\": %.3f}%s\n"
          (json_escape r.workload.Workloads.Spec.name)
          o.Sim.Counters.insns n.Sim.Counters.insns
          (pct o.Sim.Counters.insns n.Sim.Counters.insns)
          o.Sim.Counters.cond_branches n.Sim.Counters.cond_branches
          (pct o.Sim.Counters.cond_branches n.Sim.Counters.cond_branches)
          ss st fs ft (fs - ss)
          (Reorder.Pass.reordered_count r.result.Driver.Pipeline.r_report)
          r.seconds
          (if i = nrows - 1 then "" else ","))
      rows;
    p "  ]\n";
    p "}\n";
    close_out oc;
    Printf.printf "[bench] wrote %s\n" !json_path

(* ------------------------------------------------------------------ *)
(* Static profile: heuristic prediction vs the training run             *)
(* ------------------------------------------------------------------ *)

let static_json_path = ref "BENCH_PR9.json"

(* per workload: (orig branches, reordered branches), [None] for a
   contained failure *)
let profile_branch_rows profile =
  let config =
    {
      Driver.Config.default with
      Driver.Config.heuristic = Mopt.Switch_lower.set_i;
      Driver.Config.verify = !verify;
      Driver.Config.profile;
    }
  in
  let jobs = jobs_for config in
  Printf.eprintf
    "[bench] running the 17 workloads with --profile=%s (set I)...\n%!"
    (Driver.Config.profile_name profile);
  let policy =
    {
      Driver.Guard.default with
      Driver.Guard.timeout_ms = !timeout_ms;
      retries = !retries;
      degrade = true;
    }
  in
  let outcomes =
    Driver.Pipeline.run_jobs_guarded ~domains:(domains ()) ~policy jobs
  in
  List.map2
    (fun (w : Workloads.Spec.t) (o : Driver.Pipeline.job_outcome) ->
      match o.Driver.Pipeline.o_outcome with
      | Driver.Pool.Ok result ->
        let ob =
          result.Driver.Pipeline.r_original.Driver.Pipeline.v_counters
            .Sim.Counters.cond_branches
        in
        let nb =
          result.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
            .Sim.Counters.cond_branches
        in
        (w.Workloads.Spec.name, Some (ob, nb))
      | out ->
        Printf.eprintf
          "[bench] WARNING: workload %s (--profile=%s) failed (%s: %s)\n%!"
          w.Workloads.Spec.name
          (Driver.Config.profile_name profile)
          (Driver.Pool.outcome_status out)
          (Driver.Pool.outcome_message out);
        (w.Workloads.Spec.name, None))
    Workloads.Registry.all outcomes

(* the paper-style comparison the static-prediction layer is judged by:
   dynamic conditional-branch reduction with a trained profile, with the
   pure static prediction, and with training backfilled by prediction —
   same workloads, same heuristic set, same pipeline *)
let static_profile_section () =
  section "Static profile: predicted vs trained branch reduction (set I)";
  (* `Trained is exactly the set-I matrix every other section uses *)
  let trained =
    List.map
      (fun r ->
        ( r.workload.Workloads.Spec.name,
          Some
            ( (counters_of (orig r)).Sim.Counters.cond_branches,
              (counters_of (reord r)).Sim.Counters.cond_branches ) ))
      (rows_for Mopt.Switch_lower.set_i)
  in
  let static_rows = profile_branch_rows `Static in
  let both_rows = profile_branch_rows `Both in
  let find name rows = Option.join (List.assoc_opt name rows) in
  let red = function
    | Some (o, n) when o > 0 -> Some (pct o n)
    | _ -> None
  in
  let cell = function Some r -> Printf.sprintf "%+8.2f%%" r | None -> "       -" in
  Printf.printf "%-8s %10s %10s %10s %14s\n" "Program" "trained" "static"
    "both" "static/trained";
  line 60;
  let at_half = ref 0 and compared = ref 0 in
  List.iter
    (fun (w : Workloads.Spec.t) ->
      let name = w.Workloads.Spec.name in
      let t = red (find name trained)
      and s = red (find name static_rows)
      and b = red (find name both_rows) in
      let ratio =
        match (t, s) with
        | Some t, Some s when t < 0. ->
          incr compared;
          let r = s /. t in
          if r >= 0.5 then incr at_half;
          Some r
        | _ -> None
      in
      Printf.printf "%-8s %s %s %s %14s\n" name (cell t) (cell s) (cell b)
        (match ratio with
        | Some r -> Printf.sprintf "%.2f" r
        | None -> "-"))
    Workloads.Registry.all;
  line 60;
  let agg rows =
    let os, ns =
      List.fold_left
        (fun (os, ns) (_, v) ->
          match v with Some (o, n) -> (os + o, ns + n) | None -> (os, ns))
        (0, 0) rows
    in
    if os > 0 then Some (pct os ns) else None
  in
  Printf.printf "%-8s %s %s %s\n" "overall" (cell (agg trained))
    (cell (agg static_rows)) (cell (agg both_rows));
  Printf.printf
    "\n%d of %d workloads reach >= 50%% of the trained reduction statically\n"
    !at_half !compared;
  if not !no_json then begin
    let oc = open_out !static_json_path in
    let p fmt = Printf.fprintf oc fmt in
    p "{\n";
    p "  \"bench\": \"static_profile\",\n";
    p "  \"pr\": 9,\n";
    p "  \"heuristic_set\": \"I\",\n";
    p "  \"fast\": %b,\n" !fast;
    p "  \"workloads_at_half_trained\": %d,\n" !at_half;
    p "  \"workloads_compared\": %d,\n" !compared;
    p "  \"workloads\": [\n";
    let names = List.map (fun (w : Workloads.Spec.t) -> w.Workloads.Spec.name)
        Workloads.Registry.all in
    let nnames = List.length names in
    List.iteri
      (fun i name ->
        let num = function Some v -> Printf.sprintf "%.3f" v | None -> "null" in
        let count = function Some (_, n) -> string_of_int n | None -> "null" in
        let t = find name trained
        and s = find name static_rows
        and b = find name both_rows in
        let ob =
          match (t, s, b) with
          | Some (o, _), _, _ | _, Some (o, _), _ | _, _, Some (o, _) ->
            string_of_int o
          | _ -> "null"
        in
        p
          "    {\"name\": \"%s\", \"orig_branches\": %s, \
           \"trained_branches\": %s, \"static_branches\": %s, \
           \"both_branches\": %s, \"trained_reduction_pct\": %s, \
           \"static_reduction_pct\": %s, \"both_reduction_pct\": %s}%s\n"
          (json_escape name) ob (count t) (count s) (count b) (num (red t))
          (num (red s)) (num (red b))
          (if i = nnames - 1 then "" else ","))
      names;
    p "  ]\n";
    p "}\n";
    close_out oc;
    Printf.printf "[bench] wrote %s\n" !static_json_path
  end

(* ------------------------------------------------------------------ *)
(* Serving-shaped load: warm artifact caches vs the cold pipeline       *)
(* ------------------------------------------------------------------ *)

let serve_section () =
  section "Serve: warm-cache replay vs per-request pipeline";
  let requests = if !fast then 150 else 500 in
  let workloads =
    if !fast then Some [ "wc"; "grep"; "sort"; "awk" ] else None
  in
  let o =
    Driver.Replay.run ?workloads ~requests ~concurrency:(domains ())
      ~check_every:25
      ~progress:(fun m -> Printf.eprintf "[serve] %s\n%!" m)
      ()
  in
  Printf.printf "%-28s %d ok / %d failed on %d domain(s)\n" "requests"
    o.Driver.Replay.ro_ok o.Driver.Replay.ro_failed
    o.Driver.Replay.ro_stats.Driver.Server.st_domains;
  Printf.printf "%-28s %.1f req/s (p50 %.3f ms, p99 %.3f ms)\n"
    "warm throughput" o.Driver.Replay.ro_throughput_rps
    o.Driver.Replay.ro_p50_ms o.Driver.Replay.ro_p99_ms;
  Printf.printf "%-28s %.2f ms/request (%.1f req/s)\n" "cold pipeline"
    o.Driver.Replay.ro_cold_ms o.Driver.Replay.ro_cold_rps;
  Printf.printf "%-28s %.1fx\n" "warm vs cold" o.Driver.Replay.ro_warm_ratio;
  List.iter
    (fun (s : Sim.Artifact.stats) ->
      let total = s.Sim.Artifact.a_hits + s.Sim.Artifact.a_misses in
      Printf.printf "%-28s %d/%d hit(s) (%.1f%%)\n"
        ("cache " ^ s.Sim.Artifact.a_name)
        s.Sim.Artifact.a_hits total
        (if total = 0 then 0.
         else 100. *. float_of_int s.Sim.Artifact.a_hits /. float_of_int total))
    o.Driver.Replay.ro_stats.Driver.Server.st_caches;
  Printf.printf "%-28s %d (checked %d, mismatches %d)\n" "drift re-opts"
    o.Driver.Replay.ro_reopts o.Driver.Replay.ro_checked
    o.Driver.Replay.ro_mismatches

(* ------------------------------------------------------------------ *)

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--fast" :: rest ->
      fast := true;
      go rest
    | "--seq" :: rest ->
      seq := true;
      go rest
    | "--verify" :: rest ->
      verify := true;
      go rest
    | "--no-json" :: rest ->
      no_json := true;
      go rest
    | ("-j" | "--jobs") :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> jobs_flag := Some n
      | _ ->
        prerr_endline "bench: -j expects a positive integer";
        exit 2);
      go rest
    | "--timeout-ms" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 1 -> timeout_ms := Some n
      | _ ->
        prerr_endline "bench: --timeout-ms expects a positive integer";
        exit 2);
      go rest
    | "--retries" :: n :: rest ->
      (match int_of_string_opt n with
      | Some n when n >= 0 -> retries := n
      | _ ->
        prerr_endline "bench: --retries expects a non-negative integer";
        exit 2);
      go rest
    | "--json" :: path :: rest ->
      json_path := path;
      go rest
    | "--static-json" :: path :: rest ->
      static_json_path := path;
      go rest
    | s :: rest ->
      sections := s :: !sections;
      go rest
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  parse_args ();
  let t0 = Unix.gettimeofday () in
  if want "table3" then table3 ();
  if want "table4" then table4 ();
  if want "table5" then table5 ();
  if want "table6" then table6 ();
  if want "table7" then table7 ();
  if want "bechamel" || want "table7" then bechamel_table7 ();
  if want "table8" then table8 ();
  if want "figs" || want "figures" then figures ();
  if want "detection" then detection ();
  if want "backends" then backends_section ();
  if want "speedup" && not !seq then speedup ();
  if want "serve" then serve_section ();
  if want "static" then static_profile_section ();
  (* ablations are opt-in: they re-run the pipeline many times *)
  if List.mem "ablations" !sections then ablations ();
  let harness_wall = Unix.gettimeofday () -. t0 in
  if not !no_json then write_json ~harness_wall ();
  Printf.printf "\n[bench] done in %.1fs on %d domain(s)\n" harness_wall
    (domains ())
