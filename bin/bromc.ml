(* bromc: the branch-reordering MiniC compiler driver.

   Subcommands:
     compile   parse, optimize and dump MIR
     run       compile and execute on an input, printing counters
     reorder   the full two-pass pipeline with before/after measurements
     suite     reorder many workloads at once, fanned across domains
     fuzz      random programs through the pipeline: translation
               validation + differential execution (--inject plants
               wrong-target bugs the verifier must catch)
     lint      structured static-analysis diagnostics (interval facts,
               arm subsumption/overlap, not-reorderable explanations)
     dot       Graphviz CFGs, optionally annotated with dataflow facts
     workloads list the built-in benchmark programs
     cache     inspect/prune the native artifact store and caches
     serve     long-running optimization service (line protocol)
     replay    simulated production traffic against a server *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let heuristic_of_string = function
  | "I" | "i" | "1" -> Ok Mopt.Switch_lower.set_i
  | "II" | "ii" | "2" -> Ok Mopt.Switch_lower.set_ii
  | "III" | "iii" | "3" -> Ok Mopt.Switch_lower.set_iii
  | s -> Error (`Msg (Printf.sprintf "unknown heuristic set %S (use I, II or III)" s))

let heuristic_conv =
  Arg.conv
    ( heuristic_of_string,
      fun ppf hs -> Format.pp_print_string ppf hs.Mopt.Switch_lower.hs_name )

let heuristic_arg =
  Arg.(
    value
    & opt heuristic_conv Mopt.Switch_lower.set_i
    & info [ "h-set"; "heuristic" ] ~docv:"SET"
        ~doc:"Switch translation heuristic set: I, II or III (paper Table 2).")

let source_arg kind =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"SOURCE"
        ~doc:
          (Printf.sprintf
             "MiniC source file to %s, or a built-in workload name prefixed \
              with '@' (e.g. @wc)."
             kind))

let load_source path =
  if String.length path > 1 && path.[0] = '@' then
    let name = String.sub path 1 (String.length path - 1) in
    (Workloads.Registry.find name).Workloads.Spec.source
  else read_file path

let is_mir_file path =
  String.length path > 4 && String.sub path (String.length path - 4) 4 = ".mir"

(* a source path is either MiniC (compiled) or textual MIR (parsed) *)
let load_program path hs =
  if is_mir_file path then begin
    let prog = Mir.Parse.program (read_file path) in
    Mir.Validate.check prog;
    prog
  end
  else begin
    let prog = Minic.Lower.compile (load_source path) in
    Mopt.Switch_lower.lower_program hs prog;
    ignore (Mopt.Cleanup.finalize prog);
    Mir.Validate.check prog;
    prog
  end

let handle_errors f =
  try f () with
  | Minic.Srcloc.Error (loc, msg) ->
    Printf.eprintf "error: %s\n" (Minic.Srcloc.error_to_string loc msg);
    exit 1
  | Driver.Pool.Job_error (i, label, e) ->
    Printf.eprintf "error: job %d (%s) failed: %s\n" i label
      (match e with
      | Sim.Machine.Trap m -> "runtime trap: " ^ m
      | Failure m -> m
      | e -> Printexc.to_string e);
    exit 1
  | Sim.Machine.Trap msg ->
    Printf.eprintf "runtime trap: %s\n" msg;
    exit 1
  | Mir.Parse.Error (line, msg) ->
    Printf.eprintf "error: line %d: %s\n" line msg;
    exit 1
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 1
  | Not_found ->
    Printf.eprintf "error: no such file or workload\n";
    exit 1

(* ------------------------------------------------------------------ *)

let compile_cmd =
  let run source hs raw dot =
    handle_errors (fun () ->
        let prog =
          if is_mir_file source then Mir.Parse.program (read_file source)
          else begin
            let prog = Minic.Lower.compile (load_source source) in
            if not raw then begin
              Mopt.Switch_lower.lower_program hs prog;
              ignore (Mopt.Cleanup.finalize prog);
              Mir.Validate.check prog
            end;
            prog
          end
        in
        if dot then Format.printf "%a" (Mir.Dot.program ?annot:None) prog
        else begin
          print_string (Mir.Program.to_string prog);
          Printf.printf "\n; static instructions: %d\n"
            (Mir.Program.static_insn_count prog)
        end)
  in
  let dot =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit Graphviz CFGs instead of textual MIR.")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ] ~doc:"Dump the front end's output without optimization.")
  in
  Cmd.v
    (Cmd.info "compile" ~doc:"Compile MiniC and dump the optimized MIR.")
    Term.(const run $ source_arg "compile" $ heuristic_arg $ raw $ dot)

let input_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "input"; "i" ] ~docv:"FILE"
        ~doc:"Input file fed to the simulated program (default: empty).")

let timings_arg =
  Arg.(
    value & flag
    & info [ "timings" ]
        ~doc:"Report per-stage wall-clock times on stderr.")

let backend_conv =
  let parse = function
    | "reference" | "ref" -> Ok `Reference
    | "predecoded" | "image" -> Ok `Predecoded
    | "compiled" | "closure" -> Ok `Compiled
    | "native" -> Ok `Native
    | s ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown backend %S (use reference, predecoded, compiled or \
              native)" s))
  in
  let print ppf b =
    Format.pp_print_string ppf
      (match b with
      | `Reference -> "reference"
      | `Predecoded -> "predecoded"
      | `Compiled -> "compiled"
      | `Native -> "native")
  in
  Arg.conv (parse, print)

let backend_arg default =
  Arg.(
    value
    & opt backend_conv default
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Execution engine: $(b,reference) (MIR-walking oracle), \
           $(b,predecoded) (flat-image interpreter), $(b,compiled) \
           (closure-threaded code) or $(b,native) (runtime OCaml codegen \
           via ocamlfind + Dynlink; falls back to compiled when no \
           toolchain is present).  All four are observably identical.")

let profile_conv =
  let parse s =
    match Driver.Config.profile_of_name s with
    | Some p -> Ok p
    | None ->
      Error
        (`Msg
          (Printf.sprintf
             "unknown profile source %S (use trained, static or both)" s))
  in
  let print ppf p =
    Format.pp_print_string ppf (Driver.Config.profile_name p)
  in
  Arg.conv (parse, print)

let profile_arg =
  Arg.(
    value
    & opt profile_conv `Trained
    & info [ "profile" ] ~docv:"SOURCE"
        ~doc:
          "Where the profile counts come from: $(b,trained) (a training \
           run over the training input; the paper's baseline), \
           $(b,static) (no training run — heuristic branch probabilities \
           propagated into CFG frequencies, Ball-Larus/Wu-Larus style) or \
           $(b,both) (train, then backfill sequences the training input \
           never exercised with the static prediction).")

(* native artifact-store options, shared by every command that can select
   --backend=native; applied both process-wide (for Sim.Native callers
   that do not thread a Config) and onto the driver Config *)
let native_cache_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "native-cache" ] ~docv:"DIR"
        ~doc:
          "Directory of the native backend's compiled-artifact store \
           (default: $(b,BROMC_NATIVE_CACHE), else \
           \\$XDG_CACHE_HOME/bromc/native).")

let no_native_cache_arg =
  Arg.(
    value & flag
    & info [ "no-native-cache" ]
        ~doc:
          "Do not read or write the on-disk artifact store; native code is \
           rebuilt in a temporary directory and discarded (the in-process \
           memo still applies).")

let apply_native_opts dir no_cache =
  (match dir with Some _ -> Sim.Native.set_default_cache_dir dir | None -> ());
  if no_cache then Sim.Native.set_default_use_cache false

(* resolve `Native for ungraded commands: warn and degrade to `Compiled
   when the toolchain cannot deliver, instead of dying on Unavailable *)
let resolve_backend backend =
  match backend with
  | `Native when not (Sim.Native.available ()) ->
    Printf.eprintf
      "warning: native backend unavailable (no working ocamlfind/Dynlink \
       toolchain); falling back to compiled\n%!";
    `Compiled
  | b -> b

let report_stage label seconds = Printf.eprintf "[time] %-8s %7.3fs\n" label seconds

let verify_arg =
  Arg.(
    value & flag
    & info [ "verify" ]
        ~doc:
          "Translation-validate every sequence rewrite (Check.Verify) right \
           after the reordering pass; a rejected rewrite aborts the run.")

let run_cmd =
  let run source hs input trace reference backend timings ncache_dir
      no_ncache =
    handle_errors (fun () ->
        apply_native_opts ncache_dir no_ncache;
        let stage label f =
          if not timings then f ()
          else begin
            let t0 = Unix.gettimeofday () in
            let r = f () in
            report_stage label (Unix.gettimeofday () -. t0);
            r
          end
        in
        let prog = stage "compile" (fun () -> load_program source hs) in
        let input = match input with Some f -> read_file f | None -> "" in
        let on_block =
          if trace then
            Some (fun ~func ~label -> Printf.eprintf "[trace] %s:%s\n" func label)
          else None
        in
        let backend =
          resolve_backend (if reference then `Reference else backend)
        in
        let result =
          stage "measure" (fun () -> Sim.Machine.run ~backend ?on_block prog ~input)
        in
        print_string result.Sim.Machine.output;
        Printf.eprintf "exit code: %d\n" result.Sim.Machine.exit_code;
        Format.eprintf "%a@." Sim.Counters.pp result.Sim.Machine.counters)
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:"Print every basic block executed to stderr (control-flow trace).")
  in
  let reference =
    Arg.(
      value & flag
      & info [ "reference" ]
          ~doc:
            "Interpret the MIR directly instead of the fast backends \
             (shorthand for $(b,--backend=reference)).")
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Compile and execute a MiniC program on the simulator.")
    Term.(
      const run $ source_arg "run" $ heuristic_arg $ input_arg $ trace
      $ reference $ backend_arg `Compiled $ timings_arg
      $ native_cache_dir_arg $ no_native_cache_arg)

let reorder_cmd =
  let run source hs train test exhaustive common_succ coalesce profile_layout
      profile backend timings verify ncache_dir no_ncache =
    handle_errors (fun () ->
        apply_native_opts ncache_dir no_ncache;
        let backend = resolve_backend backend in
        let name = source in
        let src = load_source source in
        let training_input, test_input =
          match source.[0], train, test with
          | '@', None, None ->
            let w =
              Workloads.Registry.find (String.sub source 1 (String.length source - 1))
            in
            ( Lazy.force w.Workloads.Spec.training_input,
              Lazy.force w.Workloads.Spec.test_input )
          | _, train, test ->
            ( (match train with Some f -> read_file f | None -> ""),
              match test with Some f -> read_file f | None -> "" )
        in
        let config =
          {
            Driver.Config.default with
            Driver.Config.heuristic = hs;
            selector = (if exhaustive then `Exhaustive else `Greedy);
            common_succ;
            profile_layout;
            profile;
            backend;
            native_cache_dir = ncache_dir;
            native_cache = not no_ncache;
            verify;
            coalesce_machine =
              (match coalesce with
              | Some "ipc" -> Some Sim.Cycle_model.sparc_ipc
              | Some "ss20" -> Some Sim.Cycle_model.sparc_20
              | Some "ultra" -> Some Sim.Cycle_model.sparc_ultra1
              | Some other ->
                failwith
                  (Printf.sprintf "unknown machine %S (use ipc, ss20 or ultra)"
                     other)
              | None -> None);
          }
        in
        let on_stage = if timings then Some report_stage else None in
        let r =
          Driver.Pipeline.run ~config ?on_stage ~name ~source:src
            ~training_input ~test_input ()
        in
        (match r.Driver.Pipeline.r_verify with
        | Some summary ->
          print_string (Format.asprintf "%a" Check.Verify.pp_summary summary)
        | None -> ());
        let o = r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
        let n = r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters in
        print_string
          (Format.asprintf "%a" Reorder.Pass.pp_report r.Driver.Pipeline.r_report);
        print_string
          (Format.asprintf "%a\n" Reorder.Stats.pp r.Driver.Pipeline.r_stats);
        Printf.printf "instructions: %d -> %d (%+.2f%%)\n"
          o.Sim.Counters.insns n.Sim.Counters.insns
          (Driver.Pipeline.pct o.Sim.Counters.insns n.Sim.Counters.insns);
        Printf.printf "branches:     %d -> %d (%+.2f%%)\n"
          o.Sim.Counters.cond_branches n.Sim.Counters.cond_branches
          (Driver.Pipeline.pct o.Sim.Counters.cond_branches
             n.Sim.Counters.cond_branches);
        Printf.printf "static insns: %d -> %d (%+.2f%%)\n"
          r.Driver.Pipeline.r_original.Driver.Pipeline.v_static_insns
          r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_static_insns
          (Driver.Pipeline.pct
             r.Driver.Pipeline.r_original.Driver.Pipeline.v_static_insns
             r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_static_insns))
  in
  let train =
    Arg.(
      value
      & opt (some string) None
      & info [ "train" ] ~docv:"FILE" ~doc:"Training input (profiling run).")
  in
  let test =
    Arg.(
      value
      & opt (some string) None
      & info [ "test" ] ~docv:"FILE" ~doc:"Test input (measurement runs).")
  in
  let exhaustive =
    Arg.(
      value & flag
      & info [ "exhaustive" ]
          ~doc:"Use the exhaustive ordering search instead of Figure 8's greedy.")
  in
  let common_succ =
    Arg.(
      value & flag
      & info [ "common-succ" ]
          ~doc:"Also reorder common-successor branch runs (paper Section 10).")
  in
  let coalesce =
    Arg.(
      value
      & opt (some string) None
      & info [ "coalesce" ] ~docv:"MACHINE"
          ~doc:
            "Let the profile choose between reordering and an indirect jump \
             under this machine's cost model (ipc, ss20 or ultra).")
  in
  let profile_layout =
    Arg.(
      value & flag
      & info [ "profile-layout" ]
          ~doc:"Also lay blocks out with training-run branch frequencies.")
  in
  Cmd.v
    (Cmd.info "reorder"
       ~doc:"Run the full profile-guided reordering pipeline and report.")
    Term.(
      const run $ source_arg "reorder" $ heuristic_arg $ train $ test
      $ exhaustive $ common_succ $ coalesce $ profile_layout $ profile_arg
      $ backend_arg `Compiled $ timings_arg $ verify_arg
      $ native_cache_dir_arg $ no_native_cache_arg)

(* flags shared by the fault-tolerant commands (suite, fuzz, bench) *)
let timeout_ms_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "timeout-ms" ] ~docv:"MS"
        ~doc:
          "Per-attempt wall-clock watchdog: a run exceeding $(docv) is \
           cancelled at the next basic block and reported as a timeout.")

let retries_arg =
  Arg.(
    value & opt int 0
    & info [ "retries" ] ~docv:"N"
        ~doc:
          "Retry a crashed job up to $(docv) extra times with seeded \
           exponential backoff before giving up (traps and timeouts are \
           deterministic and never retried).")

let failures_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "failures-json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable manifest (one JSON object per line, \
           flushed incrementally) recording every job's outcome to $(docv).")

let suite_cmd =
  let run hs jobs backend verify profile names fail_fast timeout_ms retries
      failures_json inject_n inject_seed no_degrade ncache_dir no_ncache =
    handle_errors (fun () ->
        apply_native_opts ncache_dir no_ncache;
        let workloads =
          match names with
          | [] -> Workloads.Registry.all
          | names -> List.map Workloads.Registry.find names
        in
        let config =
          {
            Driver.Config.default with
            Driver.Config.heuristic = hs;
            backend;
            native_cache_dir = ncache_dir;
            native_cache = not no_ncache;
            verify;
            profile;
          }
        in
        (* force the lazy inputs in this domain before fanning out *)
        let jobs_list =
          List.map
            (fun (w : Workloads.Spec.t) ->
              Driver.Pipeline.job ~config ~name:w.Workloads.Spec.name
                ~source:w.Workloads.Spec.source
                ~training_input:(Lazy.force w.Workloads.Spec.training_input)
                ~test_input:(Lazy.force w.Workloads.Spec.test_input)
                ())
            workloads
        in
        let domains =
          max 1
            (match jobs with
            | Some j -> j
            | None -> Driver.Pool.default_domains ())
        in
        if fail_fast && inject_n > 0 then
          raise
            (Failure
               "--fail-fast bypasses the guarded runner; it cannot be \
                combined with --inject");
        if fail_fast then begin
          (* legacy abort-on-first-failure path *)
          let t0 = Unix.gettimeofday () in
          let results = Driver.Pipeline.run_jobs ~domains jobs_list in
          let wall = Unix.gettimeofday () -. t0 in
          Printf.printf "%-8s %12s %12s %9s %8s\n" "workload" "orig insns"
            "reord insns" "reduction" "seconds";
          List.iter
            (fun ((r : Driver.Pipeline.result), seconds) ->
              let o = r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters in
              let n =
                r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
              in
              Printf.printf "%-8s %12d %12d %8.2f%% %8.3f\n"
                r.Driver.Pipeline.r_name o.Sim.Counters.insns
                n.Sim.Counters.insns
                (Driver.Pipeline.pct o.Sim.Counters.insns n.Sim.Counters.insns)
                seconds)
            results;
          Printf.printf "total: %.2fs on %d domain(s)\n" wall domains
        end
        else begin
          (* guarded keep-going path: every job runs to a structured
             outcome, failures cannot abort or disturb siblings *)
          let policy =
            {
              Driver.Guard.default with
              Driver.Guard.timeout_ms;
              retries;
              seed = inject_seed;
              degrade = not no_degrade;
            }
          in
          let faults =
            if inject_n > 0 then
              Driver.Inject.plan ~seed:inject_seed
                ~jobs:(List.length jobs_list) ~count:inject_n
            else []
          in
          let t0 = Unix.gettimeofday () in
          let outcomes =
            Driver.Pipeline.run_jobs_guarded ~domains ~policy ~inject:faults
              jobs_list
          in
          let wall = Unix.gettimeofday () -. t0 in
          Printf.printf "%-8s %-8s %12s %12s %9s %5s %-10s %8s\n" "workload"
            "status" "orig insns" "reord insns" "reduction" "tries" "backend"
            "seconds";
          List.iter
            (fun (o : Driver.Pipeline.job_outcome) ->
              let backend =
                o.Driver.Pipeline.o_backend
                ^ if o.Driver.Pipeline.o_degraded then "*" else ""
              in
              match o.Driver.Pipeline.o_outcome with
              | Driver.Pool.Ok r ->
                let c_o =
                  r.Driver.Pipeline.r_original.Driver.Pipeline.v_counters
                in
                let c_n =
                  r.Driver.Pipeline.r_reordered.Driver.Pipeline.v_counters
                in
                Printf.printf "%-8s %-8s %12d %12d %8.2f%% %5d %-10s %8.3f\n"
                  o.Driver.Pipeline.o_name "ok" c_o.Sim.Counters.insns
                  c_n.Sim.Counters.insns
                  (Driver.Pipeline.pct c_o.Sim.Counters.insns
                     c_n.Sim.Counters.insns)
                  o.Driver.Pipeline.o_attempts backend
                  o.Driver.Pipeline.o_seconds
              | out ->
                Printf.printf "%-8s %-8s %12s %12s %9s %5d %-10s %8.3f\n"
                  o.Driver.Pipeline.o_name (Driver.Pool.outcome_status out) "-"
                  "-" "-" o.Driver.Pipeline.o_attempts backend
                  o.Driver.Pipeline.o_seconds;
                Printf.printf "  %s\n" (Driver.Pool.outcome_message out))
            outcomes;
          let count p = List.length (List.filter p outcomes) in
          let is_ok (o : Driver.Pipeline.job_outcome) =
            Driver.Pool.outcome_ok o.Driver.Pipeline.o_outcome
          in
          let failed = count (fun o -> not (is_ok o)) in
          let retried =
            count (fun o -> is_ok o && o.Driver.Pipeline.o_retried > 0)
          in
          let degraded = count (fun o -> o.Driver.Pipeline.o_degraded) in
          Printf.printf
            "total: %.2fs on %d domain(s); %d ok (%d retried, %d degraded), \
             %d failed\n"
            wall domains
            (count is_ok)
            retried degraded failed;
          (match failures_json with
          | Some path ->
            Driver.Manifest.write path
              (List.map Driver.Pipeline.manifest_of_outcome outcomes);
            Printf.eprintf "failure manifest written to %s\n" path
          | None -> ());
          if faults <> [] then begin
            (* containment certification: every planted fault must have
               bitten and been either recovered or attributed; no
               non-victim job may fail *)
            let escapes =
              List.filter_map
                (fun (f : Driver.Inject.fault) ->
                  let o = List.nth outcomes f.Driver.Inject.i_job in
                  if
                    is_ok o
                    && o.Driver.Pipeline.o_retried = 0
                    && not o.Driver.Pipeline.o_degraded
                  then
                    Some
                      (Format.asprintf "%a: fault left no trace (escape)"
                         Driver.Inject.pp_fault f)
                  else None)
                faults
            in
            let collateral =
              List.filter_map
                (fun (o : Driver.Pipeline.job_outcome) ->
                  if o.Driver.Pipeline.o_injected = "" && not (is_ok o) then
                    Some
                      (Printf.sprintf "job %d (%s) failed without a fault: %s"
                         o.Driver.Pipeline.o_index o.Driver.Pipeline.o_name
                         (Driver.Pool.outcome_message
                            o.Driver.Pipeline.o_outcome))
                  else None)
                outcomes
            in
            Printf.printf
              "injection: %d faults planted, %d recovered, %d contained \
               failures, %d escapes, %d collateral\n"
              (List.length faults)
              (List.length
                 (List.filter
                    (fun (f : Driver.Inject.fault) ->
                      is_ok (List.nth outcomes f.Driver.Inject.i_job))
                    faults))
              (List.length
                 (List.filter
                    (fun (f : Driver.Inject.fault) ->
                      not (is_ok (List.nth outcomes f.Driver.Inject.i_job)))
                    faults))
              (List.length escapes) (List.length collateral);
            List.iter (Printf.eprintf "error: %s\n") (escapes @ collateral);
            if escapes <> [] || collateral <> [] then exit 1
          end
          else if failed > 0 then exit 1
        end)
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Number of domains to fan pipelines across (default: the \
             machine's recommended domain count, or \\$(b,BROMC_DOMAINS)).")
  in
  let names =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"WORKLOAD"
          ~doc:"Workloads to run (default: all built-ins).")
  in
  let fail_fast =
    Arg.(
      value & flag
      & info [ "fail-fast" ]
          ~doc:
            "Abort the whole suite on the first failing workload (legacy \
             behaviour).  The default keeps going: every workload runs to a \
             structured outcome and failures are reported together.")
  in
  let inject_n =
    Arg.(
      value & opt int 0
      & info [ "inject" ] ~docv:"N"
          ~doc:
            "Fault-injection self-test: plant $(docv) seeded faults (worker \
             exceptions, traps, fuel and deadline exhaustion, wrong-result \
             corruption) into distinct jobs and require every one to be \
             contained — recovered by retry/degradation or attributed in the \
             outcome — with all sibling results intact.  Exits nonzero on \
             any escape.")
  in
  let inject_seed =
    Arg.(
      value & opt int 0
      & info [ "inject-seed" ] ~docv:"S"
          ~doc:"Seed for the fault plan and retry backoff jitter.")
  in
  let no_degrade =
    Arg.(
      value & flag
      & info [ "no-degrade" ]
          ~doc:
            "Disable backend graceful degradation (by default a job whose \
             attempts crash on the requested backend is retried down the \
             native > compiled > predecoded > reference ladder; a missing \
             native toolchain counts as a crash of the native rung).")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Run the reordering pipeline over many workloads in parallel and \
          print the per-workload instruction reductions.  Jobs are guarded: \
          crashes, traps and timeouts are contained per job and reported \
          together (see $(b,--fail-fast), $(b,--timeout-ms), $(b,--retries), \
          $(b,--inject)).")
    Term.(
      const run $ heuristic_arg $ jobs $ backend_arg `Compiled $ verify_arg
      $ profile_arg $ names $ fail_fast $ timeout_ms_arg $ retries_arg
      $ failures_json_arg $ inject_n $ inject_seed $ no_degrade
      $ native_cache_dir_arg $ no_native_cache_arg)

(* trained/static only: `Both is a pipeline notion (train + backfill);
   the per-case fuzz and corpus harnesses have exactly one counts
   source *)
let profile2_conv =
  let parse = function
    | "trained" -> Ok `Trained
    | "static" -> Ok `Static
    | s ->
      Error
        (`Msg
          (Printf.sprintf "unknown profile source %S (use trained or static)"
             s))
  in
  let print ppf p =
    Format.pp_print_string ppf
      (match p with `Trained -> "trained" | `Static -> "static")
  in
  Arg.conv (parse, print)

let profile2_arg =
  Arg.(
    value
    & opt profile2_conv `Trained
    & info [ "profile" ] ~docv:"SOURCE"
        ~doc:
          "Counts source for every case: $(b,trained) (a training run on \
           the case's training input) or $(b,static) (profile-free \
           heuristic prediction; no training run).")

let fuzz_cmd =
  let run cases seed backend native inject profile save_failure corpus_dir
      quiet failures_json resume timeout_ms =
    handle_errors (fun () ->
        let backends =
          match (backend, native) with
          | Some b, _ -> [ (b :> Check.Fuzz.backend) ]
          | None, true -> Check.Fuzz.all_backends ()
          | None, false -> Check.Fuzz.default_backends
        in
        let log = if quiet then ignore else fun m -> Printf.eprintf "%s\n%!" m in
        (* resume: cases already green in a previous (possibly killed)
           run's manifest are skipped, and their entries carried forward *)
        let green =
          match resume with
          | None -> []
          | Some path ->
            List.filter
              (fun (e : Driver.Manifest.entry) ->
                Driver.Manifest.ok e && e.Driver.Manifest.e_id < cases)
              (Driver.Manifest.read path)
        in
        let green_ids = Hashtbl.create 64 in
        List.iter
          (fun (e : Driver.Manifest.entry) ->
            Hashtbl.replace green_ids e.Driver.Manifest.e_id ())
          green;
        let writer = Option.map Driver.Manifest.create failures_json in
        (match writer with
        | Some w -> List.iter (Driver.Manifest.add w) green
        | None -> ());
        let on_case =
          Option.map
            (fun w case status ->
              Driver.Manifest.add w
                (Driver.Manifest.entry
                   ~label:(Printf.sprintf "case-%d" case)
                   ~id:case ~status ()))
            writer
        in
        let skip =
          if Hashtbl.length green_ids = 0 then None
          else Some (Hashtbl.mem green_ids)
        in
        let stats =
          Fun.protect
            ~finally:(fun () ->
              match writer with Some w -> Driver.Manifest.close w | None -> ())
            (fun () ->
              Check.Fuzz.run ~backends ~inject ~log ~profile ?skip ?on_case
                ?deadline_ms:timeout_ms ~cases ~seed ())
        in
        print_string (Format.asprintf "%a" Check.Fuzz.pp_stats stats);
        if inject && stats.Check.Fuzz.st_injected = 0 then begin
          Printf.eprintf
            "error: no case reordered, nothing could be injected — the run is \
             vacuous\n";
          exit 1
        end;
        if inject && stats.Check.Fuzz.st_caught < stats.Check.Fuzz.st_injected
        then begin
          Printf.eprintf "error: the verifier missed %d injected bug(s)\n"
            (stats.Check.Fuzz.st_injected - stats.Check.Fuzz.st_caught);
          exit 1
        end;
        if not (Check.Fuzz.ok stats) then begin
          (match save_failure with
          | Some path ->
            let oc = open_out path in
            List.iter
              (fun f ->
                output_string oc
                  (Format.asprintf "%a\n" Check.Fuzz.pp_failure f))
              stats.Check.Fuzz.st_failures;
            close_out oc;
            Printf.eprintf "shrunk counterexamples written to %s\n" path
          | None -> ());
          (match corpus_dir with
          | Some dir ->
            (* freeze each shrunk counterexample as a replayable repro *)
            List.iter
              (fun f ->
                let r = Bench_db.Corpus.mint_from_failure ~seed f in
                Printf.eprintf "repro written to %s\n"
                  (Bench_db.Corpus.save ~dir r))
              stats.Check.Fuzz.st_failures
          | None -> ());
          exit 1
        end)
  in
  let cases =
    Arg.(
      value & opt int 100
      & info [ "cases" ] ~docv:"N" ~doc:"Number of random programs to fuzz.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S"
          ~doc:"PRNG seed; runs are deterministic in the seed.")
  in
  let backend_opt =
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:
            "Restrict differential execution to one engine (default: race \
             reference, predecoded and compiled against each other).")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Also race the native backend in every differential (slow: one \
             out-of-process compile per generated program; skipped with a \
             note when no toolchain is available).")
  in
  let inject =
    Arg.(
      value & flag
      & info [ "inject" ]
          ~doc:
            "Plant a wrong-default-target bug into every reordered result and \
             require Check.Verify to reject each one (self-test of the \
             verifier; fails if any planted bug goes unnoticed).")
  in
  let save_failure =
    Arg.(
      value
      & opt (some string) None
      & info [ "save-failure" ] ~docv:"FILE"
          ~doc:"Write shrunk counterexamples of failing cases to $(docv).")
  in
  let corpus_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus-dir" ] ~docv:"DIR"
          ~doc:
            "Freeze each shrunk counterexample as a $(b,.mir) repro under \
             $(docv), ready for $(b,bromc bench corpus) to replay — the \
             flywheel's minimization loop.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress progress lines on stderr.")
  in
  let resume =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint manifest written by a previous \
             $(b,--failures-json) run (killed or complete): cases it already \
             proved green are skipped, and their entries carried forward into \
             this run's manifest.  Sound because the corpus is deterministic \
             in $(b,--seed).")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Fuzz the reordering pipeline: random programs through generate → \
          train → reorder → translation-validate (Check.Verify) → \
          differential execution across backends, with shrunk \
          counterexamples on failure.  $(b,--failures-json) checkpoints one \
          manifest line per case as it completes; $(b,--resume) skips cases \
          an earlier manifest already proved green; $(b,--timeout-ms) arms a \
          per-case watchdog.")
    Term.(
      const run $ cases $ seed $ backend_opt $ native $ inject $ profile2_arg
      $ save_failure $ corpus_dir $ quiet $ failures_json_arg $ resume
      $ timeout_ms_arg)

let lint_cmd =
  let run source hs json no_explain facts divergence input =
    (* exit-code contract: 0 = clean, 1 = diagnostics, 2 = error.  The
       shared [handle_errors] exits 1, which here means "diagnostics
       found", so lint handles its own failures. *)
    let fail msg =
      Printf.eprintf "error: %s\n" msg;
      exit 2
    in
    let prog =
      try load_program source hs with
      | Minic.Srcloc.Error (loc, msg) ->
        fail (Minic.Srcloc.error_to_string loc msg)
      | Mir.Parse.Error (line, msg) ->
        fail (Printf.sprintf "line %d: %s" line msg)
      | Failure msg -> fail msg
      | Sys_error msg -> fail msg
      | Not_found -> fail "no such file or workload"
    in
    let diags =
      try
        Analysis.Lint.check_program prog
        @ (if no_explain then []
           else Reorder.Explain.explain_program ~facts prog)
        @
        if not divergence then []
        else begin
          (* measure the branches on a reference run, then flag the ones
             where the static prediction sits on the wrong side of 0.5 *)
          let run_input =
            match input with
            | Some f -> read_file f
            | None ->
              if String.length source > 0 && source.[0] = '@' then
                Lazy.force
                  (Workloads.Registry.find
                     (String.sub source 1 (String.length source - 1)))
                    .Workloads.Spec.training_input
              else ""
          in
          let sites = Sim.Machine.sites prog in
          let measured = Hashtbl.create 64 in
          let on_branch ~site ~taken =
            let key = sites.(site) in
            let t, f =
              Option.value ~default:(0, 0) (Hashtbl.find_opt measured key)
            in
            Hashtbl.replace measured key
              (if taken then (t + 1, f) else (t, f + 1))
          in
          (try
             ignore
               (Sim.Machine.run ~backend:`Reference ~on_branch prog
                  ~input:run_input)
           with Sim.Machine.Trap _ -> ()
             (* branch counts up to a trap still count *));
          Analysis.Lint.divergence prog ~observed:(fun ~func ~label ->
              Hashtbl.find_opt measured (func, label))
        end
      with Failure msg -> fail msg
    in
    if json then print_string (Analysis.Lint.to_json diags)
    else
      List.iter
        (fun d -> Format.printf "%a@\n" Analysis.Lint.pp_diag d)
        diags;
    exit (if diags = [] then 0 else 1)
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:"Emit the diagnostics as a JSON array on stdout.")
  in
  let no_explain =
    Arg.(
      value & flag
      & info [ "no-explain" ]
          ~doc:
            "Suppress the not-reorderable explanations for lone range \
             tests; report only the interval-fact diagnostics.")
  in
  let facts =
    Arg.(
      value
      & opt bool true
      & info [ "facts" ] ~docv:"BOOL"
          ~doc:
            "Run the not-reorderable walk with interval-facts detection \
             (default true), so the reasons reflect what even the \
             strengthened detection cannot admit.")
  in
  let divergence =
    Arg.(
      value & flag
      & info [ "divergence" ]
          ~doc:
            "Also run the program on the reference interpreter and report \
             every branch whose static heuristic prediction and measured \
             behaviour sit on opposite sides of 50% — where \
             $(b,--profile=static) and $(b,--profile=trained) would \
             reorder differently.  Advisory: predictions are heuristic, \
             not proved.")
  in
  let input =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ; "i" ] ~docv:"FILE"
          ~doc:
            "Input for the $(b,--divergence) measurement run (default: the \
             workload's training input for $(b,@)-sources, else empty).")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically analyze a program and report proved diagnostics: \
          unreachable blocks, branches decidable from interval facts, \
          subsumed and overlapping range-test arms, and why lone range \
          tests are not reorderable.  Exit code 0 = clean, 1 = \
          diagnostics reported, 2 = error.")
    Term.(
      const run $ source_arg "lint" $ heuristic_arg $ json $ no_explain
      $ facts $ divergence $ input)

let dot_cmd =
  let run source hs facts =
    handle_errors (fun () ->
        let prog = load_program source hs in
        let annot =
          match facts with
          | None -> None
          | Some `Intervals ->
            Some
              (fun (fn : Mir.Func.t) ->
                let fx = Analysis.Intervals.analyze fn in
                let regs =
                  List.sort_uniq Mir.Reg.compare
                    (fn.Mir.Func.params
                    @ List.concat_map
                        (fun (b : Mir.Block.t) ->
                          List.concat_map
                            (fun i -> Mir.Insn.defs i @ Mir.Insn.uses i)
                            b.Mir.Block.insns)
                        fn.Mir.Func.blocks)
                in
                fun (b : Mir.Block.t) ->
                  if not (Analysis.Intervals.reachable fx b.Mir.Block.label)
                  then Some "unreachable"
                  else
                    let facts =
                      List.filter_map
                        (fun r ->
                          let iv =
                            Analysis.Intervals.reg_in fx b.Mir.Block.label r
                          in
                          if Analysis.Iv.equal iv Analysis.Iv.top then None
                          else
                            Some
                              (Format.asprintf "%a:%a" Mir.Reg.pp r
                                 Analysis.Iv.pp iv))
                        regs
                    in
                    if facts = [] then None
                    else Some (String.concat " " facts))
          | Some `Live ->
            Some
              (fun (fn : Mir.Func.t) ->
                let lv = Mir.Liveness.compute fn in
                fun (b : Mir.Block.t) ->
                  let set = Mir.Liveness.live_in lv b.Mir.Block.label in
                  if Mir.Reg.Set.is_empty set then None
                  else
                    Some
                      (Format.asprintf "live: %a"
                         (Format.pp_print_list ~pp_sep:Format.pp_print_space
                            Mir.Reg.pp)
                         (Mir.Reg.Set.elements set)))
          | Some `Freq ->
            Some
              (fun (fn : Mir.Func.t) ->
                let loops = Analysis.Loops.analyze fn in
                let heur = Analysis.Heur.analyze ~loops fn in
                let freq = Analysis.Freq.analyze ~heur ~loops fn in
                fun (b : Mir.Block.t) ->
                  let label = b.Mir.Block.label in
                  if not (Analysis.Freq.reached freq label) then
                    Some "freq: unreached"
                  else
                    let parts =
                      Printf.sprintf "freq %.3g"
                        (Analysis.Freq.block_freq freq label)
                      :: List.filter_map
                           (fun (s, p) ->
                             (* annotate real splits only; jumps are 1 *)
                             if p >= 1. then None
                             else Some (Printf.sprintf "->%s %.2f" s p))
                           (Analysis.Freq.succ_probs freq label)
                    in
                    Some (String.concat " " parts))
        in
        Format.printf "%a" (Mir.Dot.program ?annot) prog)
  in
  let facts =
    let facts_conv =
      Arg.conv
        ( (function
          | "intervals" -> Ok `Intervals
          | "live" -> Ok `Live
          | "freq" -> Ok `Freq
          | s ->
            Error
              (`Msg
                (Printf.sprintf
                   "unknown facts %S (use intervals, live or freq)" s))),
          fun ppf f ->
            Format.pp_print_string ppf
              (match f with
              | `Intervals -> "intervals"
              | `Live -> "live"
              | `Freq -> "freq") )
    in
    Arg.(
      value
      & opt (some facts_conv) None
      & info [ "facts" ] ~docv:"KIND"
          ~doc:
            "Annotate each block with dataflow facts: $(b,intervals) \
             (value ranges at block entry), $(b,live) (registers live \
             at block entry) or $(b,freq) (predicted execution frequency \
             and heuristic branch probabilities — what \
             $(b,--profile=static) feeds the reorderer).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Emit Graphviz CFGs for a program, optionally annotated with \
          dataflow analysis facts.")
    Term.(const run $ source_arg "render" $ heuristic_arg $ facts)

let workloads_cmd =
  let run () =
    List.iter
      (fun (w : Workloads.Spec.t) ->
        Printf.printf "%-8s %s\n" w.Workloads.Spec.name
          w.Workloads.Spec.description)
      Workloads.Registry.all
  in
  Cmd.v
    (Cmd.info "workloads" ~doc:"List the built-in Table 3 benchmark programs.")
    Term.(const run $ const ())

let cache_cmd =
  let run dir clear evict_stale verify =
    handle_errors (fun () ->
        let dir =
          match dir with Some d -> d | None -> Sim.Native.Cache.default_dir ()
        in
        if verify then begin
          let r = Sim.Native.Cache.verify ~dir () in
          Printf.printf
            "verified %d artifact(s) in %s: %d ok, %d adopted (checksum \
             written), %d quarantined\n"
            r.Sim.Native.Cache.v_checked dir r.Sim.Native.Cache.v_ok
            r.Sim.Native.Cache.v_healed r.Sim.Native.Cache.v_quarantined;
          if r.Sim.Native.Cache.v_quarantined > 0 then begin
            (* corrupted artifacts were moved aside; the next request
               for them rebuilds from source.  Non-zero exit so CI
               sweeps notice the store was unhealthy *)
            Printf.printf
              "quarantined artifacts moved to %s; they will be rebuilt on \
               next use\n"
              (Filename.concat dir "quarantine");
            exit 1
          end
        end
        else if clear then begin
          let n = Sim.Native.Cache.clear ~dir () in
          Sim.Native.clear_memo ();
          let dropped = Sim.Artifact.clear_registered () in
          Printf.printf "cleared %d file(s) from %s" n dir;
          if dropped > 0 then
            Printf.printf " and %d in-process artifact(s)" dropped;
          print_newline ()
        end
        else if evict_stale then begin
          match Sim.Native.Cache.fingerprint () with
          | None ->
            Printf.eprintf
              "error: no working native toolchain, cannot tell which \
               fingerprint is current (use --clear to drop everything)\n";
            exit 1
          | Some fp ->
            let n = Sim.Native.Cache.evict_stale ~dir () in
            Printf.printf "evicted %d stale file(s) from %s (kept %s)\n" n dir
              fp
        end
        else begin
          (* default: --stats *)
          Printf.printf "store:       %s\n" dir;
          (match Sim.Native.Cache.fingerprint () with
          | Some fp -> Printf.printf "fingerprint: %s\n" fp
          | None -> Printf.printf "fingerprint: (no native toolchain)\n");
          let entries = Sim.Native.Cache.list ~dir () in
          if entries = [] then print_string "empty\n"
          else
            List.iter
              (fun (e : Sim.Native.Cache.entry) ->
                Printf.printf "%-32s %4d artifact(s) %10d bytes%s\n"
                  e.Sim.Native.Cache.e_fingerprint e.Sim.Native.Cache.e_files
                  e.Sim.Native.Cache.e_bytes
                  (if e.Sim.Native.Cache.e_current then "  (current)" else ""))
              entries;
          let ns = Sim.Native.stats () in
          Printf.printf
            "memo:        %d entry(ies), cap %d, %d hit(s), %d eviction(s)\n"
            ns.Sim.Native.memo_entries ns.Sim.Native.memo_capacity
            ns.Sim.Native.memo_hits ns.Sim.Native.memo_evictions;
          (* the MIR / image / closure artifact caches are in-process
             state of a serving daemon; a fresh CLI invocation has none.
             the serve protocol's [stats] request reports the live
             numbers *)
          match Sim.Artifact.registered_stats () with
          | [] ->
            print_string
              "artifacts:   (none in this process; query a running \
               `bromc serve` with its `stats` request)\n"
          | regs ->
            List.iter
              (fun (s : Sim.Artifact.stats) ->
                Printf.printf
                  "artifacts:   %-8s %4d entry(ies) cap %d, %d hit(s), %d \
                   miss(es), %d build(s), %d eviction(s)\n"
                  s.Sim.Artifact.a_name s.Sim.Artifact.a_entries
                  s.Sim.Artifact.a_capacity s.Sim.Artifact.a_hits
                  s.Sim.Artifact.a_misses s.Sim.Artifact.a_builds
                  s.Sim.Artifact.a_evictions)
              regs
        end)
  in
  let dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Operate on this store instead of the default one.")
  in
  let clear =
    Arg.(
      value & flag
      & info [ "clear" ] ~doc:"Remove every cached artifact in the store.")
  in
  let evict_stale =
    Arg.(
      value & flag
      & info [ "evict-stale" ]
          ~doc:
            "Remove artifacts built by a different compiler/ABI fingerprint \
             than the current toolchain's (left behind by switches or \
             upgrades); the current fingerprint's artifacts are kept.")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify" ]
          ~doc:
            "Digest every cached artifact against its $(b,.sum) checksum \
             sidecar; mismatches are quarantined (rebuilt on next use) and \
             reported with a non-zero exit, artifacts predating checksums \
             get a sidecar written.")
  in
  Cmd.v
    (Cmd.info "cache"
       ~doc:
         "Inspect, verify or prune the native backend's on-disk $(b,.cmxs) \
          artifact store (default action: print per-fingerprint statistics).")
    Term.(const run $ dir $ clear $ evict_stale $ verify)

(* ------------------------------------------------------------------ *)
(* serve: the long-running optimization service                        *)
(* ------------------------------------------------------------------ *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let server_stats_json (st : Driver.Server.stats) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"requests\":%d,\"cold\":%d,\"shadow_runs\":%d,\"merges\":%d,\
        \"reopts\":%d,\"domains\":%d,\"caches\":["
       st.Driver.Server.st_requests st.Driver.Server.st_cold
       st.Driver.Server.st_shadow_runs st.Driver.Server.st_merges
       st.Driver.Server.st_reopts st.Driver.Server.st_domains);
  List.iteri
    (fun i (s : Sim.Artifact.stats) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"entries\":%d,\"hits\":%d,\"misses\":%d,\
            \"builds\":%d,\"evictions\":%d}"
           (json_escape s.Sim.Artifact.a_name)
           s.Sim.Artifact.a_entries s.Sim.Artifact.a_hits
           s.Sim.Artifact.a_misses s.Sim.Artifact.a_builds
           s.Sim.Artifact.a_evictions))
    st.Driver.Server.st_caches;
  let ns = st.Driver.Server.st_native in
  Buffer.add_string b
    (Printf.sprintf
       "],\"native\":{\"memo_hits\":%d,\"disk_hits\":%d,\"compiles\":%d,\
        \"memo_entries\":%d,\"memo_evictions\":%d,\"quarantined\":%d},\
        \"overloaded\":%d,\"restored\":%d,\"programs\":["
       ns.Sim.Native.memo_hits ns.Sim.Native.disk_hits
       ns.Sim.Native.compiles ns.Sim.Native.memo_entries
       ns.Sim.Native.memo_evictions ns.Sim.Native.quarantined
       st.Driver.Server.st_overloaded st.Driver.Server.st_restored);
  List.iteri
    (fun i (name, gen, execs) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"generation\":%d,\"executions\":%d}"
           (json_escape name) gen execs))
    st.Driver.Server.st_programs;
  Buffer.add_string b "]}";
  Buffer.contents b

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:"Worker domains (default: the machine's recommended count).")

let sample_every_arg =
  Arg.(
    value & opt int 4
    & info [ "sample-every" ] ~docv:"N"
        ~doc:
          "Run the instrumented profiling shadow on every N-th request per \
           worker (the served artifact is never instrumented).")

let merge_every_arg =
  Arg.(
    value & opt int 8
    & info [ "merge-every" ] ~docv:"N"
        ~doc:
          "Shadow runs accumulated across workers before an opportunistic \
           shard merge into the global profile.")

let drift_min_execs_arg default =
  Arg.(
    value & opt int default
    & info [ "drift-min-execs" ] ~docv:"N"
        ~doc:
          "New profile executions required after the last (re-)optimization \
           before the drift check may re-optimize — damping against \
           artifact thrash.")

let state_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state-dir" ] ~docv:"DIR"
        ~doc:
          "Durable state directory: journal + snapshots of merged profiles, \
           predictor tallies and drift generations.  Existing state found \
           there is restored on startup (crash-safe warm start).")

let queue_cap_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "queue-cap" ] ~docv:"N"
        ~doc:
          "Admission control: shed requests with an $(b,overloaded) \
           response once N tasks are waiting (default: unbounded).")

let snapshot_every_arg =
  Arg.(
    value & opt int 64
    & info [ "snapshot-every" ] ~docv:"N"
        ~doc:
          "Journal records between snapshot compactions (with \
           $(b,--state-dir)).")

let serve_cmd =
  let run domains sample_every merge_every drift_min_execs backend profile
      ncache_dir no_ncache state_dir queue_cap snapshot_every =
    handle_errors (fun () ->
        apply_native_opts ncache_dir no_ncache;
        let backend = resolve_backend backend in
        let config =
          {
            Driver.Config.default with
            Driver.Config.backend;
            profile;
            native_cache_dir = ncache_dir;
            native_cache = not no_ncache;
          }
        in
        let srv =
          Driver.Server.create ~config ?domains ~sample_every ~merge_every
            ~drift_min_execs ?state_dir ?queue_cap ~snapshot_every ()
        in
        let out_lock = Mutex.create () in
        let print_line s =
          Mutex.lock out_lock;
          print_string s;
          print_newline ();
          flush stdout;
          Mutex.unlock out_lock
        in
        let pend_lock = Mutex.create () in
        let pend_cond = Condition.create () in
        let pending = ref 0 in
        let drain () =
          Mutex.lock pend_lock;
          while !pending > 0 do
            Condition.wait pend_cond pend_lock
          done;
          Mutex.unlock pend_lock
        in
        let request_for name seed =
          if String.equal name Driver.Replay.drift_name then
            ( Driver.Replay.drift_source,
              Driver.Replay.drift_input ~phase:(abs seed land 1) ~seed )
          else
            let w = Workloads.Registry.find name in
            ( w.Workloads.Spec.source,
              Driver.Replay.input_slice ~seed
                (Lazy.force w.Workloads.Spec.test_input) )
        in
        let render id (r : Driver.Server.response) =
          if String.equal r.Driver.Server.rs_status "ok" then
            Printf.sprintf
              "resp %d ok program=%s gen=%d cold=%b backend=%s exit=%d \
               ms=%.3f bytes=%d md5=%s"
              id r.Driver.Server.rs_program r.Driver.Server.rs_generation
              r.Driver.Server.rs_cold r.Driver.Server.rs_backend
              r.Driver.Server.rs_exit_code r.Driver.Server.rs_wall_ms
              (String.length r.Driver.Server.rs_output)
              (Digest.to_hex (Digest.string r.Driver.Server.rs_output))
          else
            Printf.sprintf "resp %d %s program=%s msg=%S" id
              r.Driver.Server.rs_status r.Driver.Server.rs_program
              r.Driver.Server.rs_message
        in
        let restored =
          (Driver.Server.stats srv).Driver.Server.st_restored
        in
        print_line
          (Printf.sprintf "ready domains=%d backend=%s restored=%d"
             (Driver.Server.domains srv)
             (Driver.Config.backend_name backend)
             restored);
        let next_id = ref 0 in
        let quit = ref false in
        while not !quit do
          match input_line stdin with
          | exception End_of_file -> quit := true
          | line -> (
            let words =
              String.split_on_char ' ' (String.trim line)
              |> List.filter (fun s -> not (String.equal s ""))
            in
            match words with
            | [] -> ()
            | [ "quit" ] | [ "exit" ] -> quit := true
            | [ "sync" ] ->
              drain ();
              Driver.Server.sync srv;
              print_line "synced"
            | [ "stats" ] ->
              print_line ("stats " ^ server_stats_json (Driver.Server.stats srv))
            | "run" :: name :: rest -> (
              let seed =
                match rest with
                | [] -> 0
                | s :: _ -> ( try int_of_string s with _ -> 0)
              in
              (* optional third word: a per-request deadline in ms *)
              let deadline_ms =
                match rest with
                | _ :: d :: _ -> (
                  match int_of_string_opt d with
                  | Some ms when ms > 0 -> Some ms
                  | _ -> None)
                | _ -> None
              in
              incr next_id;
              let id = !next_id in
              match request_for name seed with
              | exception Not_found ->
                print_line
                  (Printf.sprintf "resp %d err unknown workload %S" id name)
              | source, input ->
                Mutex.lock pend_lock;
                incr pending;
                Mutex.unlock pend_lock;
                Driver.Server.post ?deadline_ms srv ~name ~source ~input
                  (fun r ->
                    print_line (render id r);
                    Mutex.lock pend_lock;
                    decr pending;
                    if !pending = 0 then Condition.broadcast pend_cond;
                    Mutex.unlock pend_lock))
            | _ -> print_line (Printf.sprintf "err unknown command %S" line))
        done;
        drain ();
        Driver.Server.shutdown srv;
        print_line "bye")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-running optimization service: a line protocol on \
          stdin/stdout over a worker-domain pool with content-hash \
          artifact caches, sharded online profiles and drift-triggered \
          re-optimization.  Requests: $(b,run WORKLOAD [SEED]) (responses \
          arrive as they finish, tagged $(b,resp ID ...); the built-in \
          $(b,drift) workload maps even seeds to phase-0 and odd seeds to \
          phase-1 inputs), $(b,sync) (drain, merge shards, run the drift \
          check), $(b,stats) (one JSON line), $(b,quit).  With \
          $(b,--profile=static) cold requests skip the first-request \
          training run and serve on the static prediction; the online \
          shard profiles and the drift check re-optimize as real counts \
          diverge from it.  With $(b,--state-dir) the daemon is crash-safe: \
          learned profiles, predictor tallies and drift generations are \
          journaled and snapshotted there, and a restart warm-starts every \
          persisted program at its learned generation.  $(b,run) accepts an \
          optional third argument, a per-request deadline in milliseconds.")
    Term.(
      const run $ domains_arg $ sample_every_arg $ merge_every_arg
      $ drift_min_execs_arg 32 $ backend_arg `Compiled $ profile_arg
      $ native_cache_dir_arg $ no_native_cache_arg $ state_dir_arg
      $ queue_cap_arg $ snapshot_every_arg)

(* ------------------------------------------------------------------ *)
(* replay: simulated production traffic against a server               *)
(* ------------------------------------------------------------------ *)

let replay_cmd =
  let run requests concurrency workloads seed no_drift sample_every
      merge_every drift_min_execs check_every json_path quiet backend
      ncache_dir no_ncache chaos chaos_seed state_dir =
    handle_errors (fun () ->
        apply_native_opts ncache_dir no_ncache;
        let backend = resolve_backend backend in
        let config =
          {
            Driver.Config.default with
            Driver.Config.backend;
            native_cache_dir = ncache_dir;
            native_cache = not no_ncache;
          }
        in
        let workloads =
          Option.map
            (fun s ->
              String.split_on_char ',' s
              |> List.map String.trim
              |> List.filter (fun w -> not (String.equal w "")))
            workloads
        in
        let progress = if quiet then None else Some prerr_endline in
        let o =
          Driver.Replay.run ~config ?workloads ~requests ?concurrency ~seed
            ~drift:(not no_drift) ~sample_every ~merge_every ~drift_min_execs
            ~check_every ~chaos ~chaos_seed ?state_dir ?progress ()
        in
        Printf.printf "requests:    %d ok, %d failed (%d domains)\n"
          o.Driver.Replay.ro_ok o.Driver.Replay.ro_failed
          o.Driver.Replay.ro_stats.Driver.Server.st_domains;
        Printf.printf "throughput:  %.1f req/s over %.2fs\n"
          o.Driver.Replay.ro_throughput_rps o.Driver.Replay.ro_elapsed_s;
        Printf.printf "latency:     p50 %.3f ms, p99 %.3f ms\n"
          o.Driver.Replay.ro_p50_ms o.Driver.Replay.ro_p99_ms;
        Printf.printf "cold:        %.2f ms/request (%.1f req/s)\n"
          o.Driver.Replay.ro_cold_ms o.Driver.Replay.ro_cold_rps;
        Printf.printf "warm/cold:   %.1fx\n" o.Driver.Replay.ro_warm_ratio;
        List.iter
          (fun (s : Sim.Artifact.stats) ->
            let total = s.Sim.Artifact.a_hits + s.Sim.Artifact.a_misses in
            Printf.printf
              "cache %-9s %d hit(s) / %d request(s) (%.1f%%), %d build(s)\n"
              (s.Sim.Artifact.a_name ^ ":")
              s.Sim.Artifact.a_hits total
              (if total = 0 then 0.
               else 100. *. float_of_int s.Sim.Artifact.a_hits /. float_of_int total)
              s.Sim.Artifact.a_builds)
          o.Driver.Replay.ro_stats.Driver.Server.st_caches;
        Printf.printf "profiles:    %d shadow run(s), %d merge(s)\n"
          o.Driver.Replay.ro_stats.Driver.Server.st_shadow_runs
          o.Driver.Replay.ro_stats.Driver.Server.st_merges;
        Printf.printf "re-opts:     %d\n" o.Driver.Replay.ro_reopts;
        List.iter
          (fun (e : Driver.Server.reopt_event) ->
            Printf.printf
              "  %s: generation %d at %d profiled execution(s)\n"
              e.Driver.Server.re_program e.Driver.Server.re_generation
              e.Driver.Server.re_executions)
          o.Driver.Replay.ro_events;
        Printf.printf "checked:     %d against the reference oracle, %d \
                       mismatch(es)\n"
          o.Driver.Replay.ro_checked o.Driver.Replay.ro_mismatches;
        if o.Driver.Replay.ro_chaos_planned > 0 then begin
          Printf.printf
            "chaos:       %d fault(s): %d ok, %d failed cleanly, %d \
             vacuous, %d escape(s)\n"
            o.Driver.Replay.ro_chaos_planned o.Driver.Replay.ro_chaos_ok
            o.Driver.Replay.ro_chaos_failed o.Driver.Replay.ro_chaos_vacuous
            o.Driver.Replay.ro_chaos_escapes;
          List.iter
            (fun (f : Driver.Replay.fault_report) ->
              Printf.printf "  request %d: %s -> %s\n"
                f.Driver.Replay.rf_request f.Driver.Replay.rf_kind
                f.Driver.Replay.rf_outcome)
            o.Driver.Replay.ro_chaos_faults
        end;
        if o.Driver.Replay.ro_crash_restarts > 0 then
          Printf.printf
            "durability:  %d crash-restart(s), %d program(s) restored, \
             restore %s\n"
            o.Driver.Replay.ro_crash_restarts o.Driver.Replay.ro_restored
            (if o.Driver.Replay.ro_restore_exact then "exact"
             else "NOT exact");
        (match json_path with
        | Some path ->
          Driver.Replay.write_json ~path o;
          Printf.printf "wrote %s\n" path
        | None -> ());
        if
          o.Driver.Replay.ro_mismatches > 0
          || o.Driver.Replay.ro_failed > o.Driver.Replay.ro_chaos_failed
          || o.Driver.Replay.ro_chaos_escapes > 0
          || (o.Driver.Replay.ro_crash_restarts > 0
             && not o.Driver.Replay.ro_restore_exact)
        then exit 1)
  in
  let requests =
    Arg.(
      value & opt int 1000
      & info [ "requests"; "n" ] ~docv:"N" ~doc:"Timed requests to fire.")
  in
  let concurrency =
    Arg.(
      value
      & opt (some int) None
      & info [ "concurrency"; "j" ] ~docv:"N"
          ~doc:"Worker domains / requests in flight (default: recommended).")
  in
  let workloads =
    Arg.(
      value
      & opt (some string) None
      & info [ "workloads" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated workload subset for the request mix (default: \
             all 17 built-ins).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Deterministic input-slice seed.")
  in
  let no_drift =
    Arg.(
      value & flag
      & info [ "no-drift" ]
          ~doc:
            "Leave the synthetic drifting workload out of the mix (no \
             mid-stream re-optimization demo).")
  in
  let check_every =
    Arg.(
      value & opt int 16
      & info [ "check-every" ] ~docv:"N"
          ~doc:
            "Differentially check every N-th response against the \
             reference-interpreter oracle (0 disables).")
  in
  let json_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the machine-readable benchmark record here.")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Suppress phase progress on stderr.")
  in
  let chaos =
    Arg.(
      value & opt int 0
      & info [ "chaos" ] ~docv:"N"
          ~doc:
            "Plant N seeded faults across the request stream (worker \
             kills, stalls, artifact corruption/truncation, journal \
             tears) and certify containment: every victim is checked \
             against the oracle and any escape fails the run.")
  in
  let chaos_seed =
    Arg.(
      value & opt int 7
      & info [ "chaos-seed" ] ~docv:"N"
          ~doc:"Deterministic seed for the chaos fault plan.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Fire a mixed stream of workload requests at an in-process \
          optimization server and report throughput, p50/p99 latency, \
          cache hit rates and drift re-optimizations (exits nonzero on \
          any unplanned failure, oracle mismatch, chaos escape or \
          inexact restore).  With $(b,--state-dir) the server is \
          durable and a crash-restart cycle is certified between the \
          waves; with $(b,--chaos) seeded faults strike mid-stream.")
    Term.(
      const run $ requests $ concurrency $ workloads $ seed $ no_drift
      $ sample_every_arg $ merge_every_arg $ drift_min_execs_arg 64
      $ check_every $ json_path $ quiet $ backend_arg `Compiled
      $ native_cache_dir_arg $ no_native_cache_arg $ chaos $ chaos_seed
      $ state_dir_arg)

(* ------------------------------------------------------------------ *)
(* bench: the continuous benchmarking flywheel                          *)
(* ------------------------------------------------------------------ *)

let history_arg =
  Arg.(
    value
    & opt string "bench/history.jsonl"
    & info [ "history" ] ~docv:"FILE"
        ~doc:
          "The normalized benchmark time series (JSONL, one schema-versioned \
           record per line).")

let load_history path =
  match Bench_db.History.load path with
  | Ok records -> records
  | Error msg -> failwith msg

let bench_import_cmd =
  let run files history gate_wall seq label commit =
    handle_errors (fun () ->
        let outcomes =
          match files with
          | [ file ] when seq <> None || label <> None || commit <> None ->
            (* single-snapshot import with explicit identity overrides *)
            (match
               Bench_db.Import.of_file ?seq ?label ?commit ~gate_wall file
             with
            | Error m -> [ (file, Bench_db.History.Failed m) ]
            | Ok r ->
              let existing = load_history history in
              if Bench_db.History.mem existing ~label:r.Bench_db.Record.r_label
              then
                [ (file, Bench_db.History.Skipped r.Bench_db.Record.r_label) ]
              else begin
                Bench_db.History.append history r;
                [ (file, Bench_db.History.Added r) ]
              end)
          | _ -> Bench_db.History.import_files ~gate_wall ~history files
        in
        let failed = ref 0 in
        List.iter
          (fun (path, outcome) ->
            match outcome with
            | Bench_db.History.Added r ->
              Printf.printf "added   %s (%s, context %s, %d metrics)\n" path
                r.Bench_db.Record.r_label r.Bench_db.Record.r_context
                (List.length r.Bench_db.Record.r_metrics)
            | Bench_db.History.Skipped label ->
              Printf.printf "skipped %s (label %s already in history)\n" path
                label
            | Bench_db.History.Failed m ->
              incr failed;
              Printf.printf "FAILED  %s: %s\n" path m)
          outcomes;
        if !failed > 0 then exit 1)
  in
  let files =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"FILE"
          ~doc:
            "Benchmark snapshot files: suite matrices ($(b,bromc suite \
             --json)), serve replays ($(b,bromc replay --json)) or fuzz \
             summaries.  The historical $(b,BENCH_PR)$(i,N)$(b,.json) shapes \
             are all understood.")
  in
  let gate_wall =
    Arg.(
      value & flag
      & info [ "gate-wall" ]
          ~doc:
            "Also gate wall-clock metrics.  Off by default: checked-in \
             snapshots come from different machines and workload scales, so \
             only ratios and deterministic counts are comparable; turn this \
             on for records produced and compared on one machine.")
  in
  let seq =
    Arg.(
      value
      & opt (some int) None
      & info [ "seq" ] ~docv:"N"
          ~doc:
            "Sequence number override (defaults to the $(b,pr) field or the \
             $(b,BENCH_PR)$(i,N) filename).  Single-file imports only.")
  in
  let label =
    Arg.(
      value
      & opt (some string) None
      & info [ "label" ] ~docv:"NAME"
          ~doc:"Record label override (defaults to $(b,PR)$(i,seq)).")
  in
  let commit =
    Arg.(
      value
      & opt (some string) None
      & info [ "commit" ] ~docv:"SHA" ~doc:"Commit hash to stamp the record.")
  in
  Cmd.v
    (Cmd.info "import"
       ~doc:
         "Lift benchmark snapshots into the normalized time series.  \
          Idempotent: labels already in the history are skipped, never \
          rewritten.")
    Term.(const run $ files $ history_arg $ gate_wall $ seq $ label $ commit)

let bench_report_cmd =
  let run history out =
    handle_errors (fun () ->
        let records = load_history history in
        match out with
        | None -> print_string (Bench_db.Report.to_markdown records)
        | Some dir ->
          if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
          let write name data =
            let path = Filename.concat dir name in
            let oc = open_out path in
            output_string oc data;
            close_out oc;
            Printf.printf "wrote %s\n" path
          in
          write "report.md" (Bench_db.Report.to_markdown records);
          write "report.html" (Bench_db.Report.to_html records))
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"DIR"
          ~doc:
            "Write $(b,report.md) and $(b,report.html) under $(docv) instead \
             of printing markdown to stdout.")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render the history as a static trend report: per-context \
          sparktables with one row per metric, one column per record, and \
          the delta between the last two observations.  Deterministic in the \
          history, so the output is diffable and CI-archivable.")
    Term.(const run $ history_arg $ out)

let bench_gate_cmd =
  let run history against max_regress head_label quiet =
    handle_errors (fun () ->
        let records = load_history history in
        if records = [] then failwith ("empty history: " ^ history);
        let heads =
          match head_label with
          | Some l -> (
            match
              List.filter
                (fun (r : Bench_db.Record.t) -> r.Bench_db.Record.r_label = l)
                records
            with
            | [] -> failwith ("no record labelled " ^ l)
            | rs -> rs)
          | None ->
            (* the latest record of every context; [records] is sorted by
               seq, so replace keeps the newest *)
            let by_ctx = Hashtbl.create 8 in
            List.iter
              (fun (r : Bench_db.Record.t) ->
                Hashtbl.replace by_ctx r.Bench_db.Record.r_context r)
              records;
            Hashtbl.fold (fun _ r acc -> r :: acc) by_ctx []
            |> List.sort (fun (a : Bench_db.Record.t) b ->
                   compare a.Bench_db.Record.r_seq b.Bench_db.Record.r_seq)
        in
        let all =
          List.concat_map
            (fun (head : Bench_db.Record.t) ->
              let verdicts =
                Bench_db.Gate.check ?max_regress ?against ~head
                  ~history:records ()
              in
              if not quiet then begin
                Printf.printf "head %s (context %s, %d gated metrics):\n"
                  head.Bench_db.Record.r_label head.Bench_db.Record.r_context
                  (List.length verdicts);
                Format.printf "%a" Bench_db.Gate.pp verdicts
              end;
              verdicts)
            heads
        in
        match Bench_db.Gate.failures all with
        | [] ->
          Printf.printf "gate: OK (%d metrics within tolerance)\n"
            (List.length all)
        | fails ->
          List.iter
            (fun v -> Format.eprintf "gate: %a@." Bench_db.Gate.pp_verdict v)
            fails;
          Printf.eprintf "gate: %d metric(s) regressed beyond tolerance\n"
            (List.length fails);
          exit 1)
  in
  let against =
    Arg.(
      value
      & opt (some string) None
      & info [ "against" ] ~docv:"LABEL"
          ~doc:
            "Compare against this record instead of the latest same-context \
             predecessor of each metric.")
  in
  let max_regress =
    Arg.(
      value
      & opt (some float) None
      & info [ "max-regress" ] ~docv:"PCT"
          ~doc:
            "Default regression tolerance in percent for metrics without \
             their own (default 10).  Per-metric tolerances and noise floors \
             from the records always win.")
  in
  let head_label =
    Arg.(
      value
      & opt (some string) None
      & info [ "head" ] ~docv:"LABEL"
          ~doc:
            "Gate only this record (default: the latest record of every \
             context).")
  in
  let quiet =
    Arg.(
      value & flag & info [ "quiet"; "q" ] ~doc:"Only print the verdict line.")
  in
  Cmd.v
    (Cmd.info "gate"
       ~doc:
         "The regression gate: direction-aware comparison of the latest \
          record(s) against their history, with per-metric tolerances and \
          absolute noise floors.  Exits 0 when every gated metric is within \
          tolerance, 1 naming each regressed metric otherwise — wire it \
          straight into CI.")
    Term.(
      const run $ history_arg $ against $ max_regress $ head_label $ quiet)

let bench_corpus_cmd =
  let run dir backend native profile mint_inject seed cases quiet =
    handle_errors (fun () ->
        let backends =
          match (backend, native) with
          | Some b, _ -> [ (b :> Check.Fuzz.backend) ]
          | None, true -> Check.Fuzz.all_backends ()
          | None, false -> Check.Fuzz.default_backends
        in
        (match mint_inject with
        | Some n ->
          let repros =
            Bench_db.Corpus.mint_from_inject ~seed ~cases ~max:n ()
          in
          List.iter
            (fun r ->
              Printf.printf "minted %s\n" (Bench_db.Corpus.save ~dir r))
            repros
        | None -> ());
        let repros =
          match Bench_db.Corpus.load_dir dir with
          | Ok rs -> rs
          | Error m -> failwith m
        in
        if repros = [] then Printf.printf "corpus: no repros under %s\n" dir
        else begin
          let failed = ref 0 in
          List.iter
            (fun (r : Bench_db.Corpus.repro) ->
              let out = Bench_db.Corpus.replay ~backends ~profile r in
              if out.Check.Fuzz.co_errors <> [] then begin
                incr failed;
                Printf.printf "FAIL %s (%s)\n" r.Bench_db.Corpus.rp_name
                  r.Bench_db.Corpus.rp_origin;
                List.iter (Printf.printf "  %s\n") out.Check.Fuzz.co_errors
              end
              else if not quiet then
                Printf.printf "ok   %s (%d reordered, %d pieces certified)\n"
                  r.Bench_db.Corpus.rp_name out.Check.Fuzz.co_reordered
                  out.Check.Fuzz.co_pieces)
            repros;
          Printf.printf "corpus: %d repros, %d failed (%d backends)\n"
            (List.length repros) !failed (List.length backends);
          if !failed > 0 then exit 1
        end)
  in
  let dir =
    Arg.(
      value & opt string "corpus"
      & info [ "dir" ] ~docv:"DIR" ~doc:"The repro corpus directory.")
  in
  let backend_opt =
    Arg.(
      value
      & opt (some backend_conv) None
      & info [ "backend" ] ~docv:"BACKEND"
          ~doc:"Replay under one engine only (default: race the three \
                in-process engines).")
  in
  let native =
    Arg.(
      value & flag
      & info [ "native" ]
          ~doc:
            "Also race the native backend (skipped when no toolchain is \
             available).")
  in
  let mint_inject =
    Arg.(
      value
      & opt (some int) None
      & info [ "mint-inject" ] ~docv:"N"
          ~doc:
            "Before replaying, recreate inject-mode fuzz cases, shrink the \
             first $(docv) caught counterexamples and save them into the \
             corpus (the seeding path).")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"S" ~doc:"Seed for $(b,--mint-inject).")
  in
  let cases =
    Arg.(
      value & opt int 50
      & info [ "cases" ] ~docv:"N"
          ~doc:"Case budget for $(b,--mint-inject).")
  in
  let quiet =
    Arg.(
      value & flag
      & info [ "quiet"; "q" ] ~doc:"Only print failures and the summary.")
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:
         "Replay every minimized $(b,.mir) repro in the corpus through the \
          full pipeline — validate, lower under the recorded heuristic set, \
          train, reorder, certify, lint cross-check, backend differential — \
          and fail on any error.  The corpus is the regression suite the \
          flywheel mints from caught counterexamples.  With \
          $(b,--profile=static) the repros replay under the profile-free \
          prediction instead of their recorded training runs.")
    Term.(
      const run $ dir $ backend_opt $ native $ profile2_arg $ mint_inject
      $ seed $ cases $ quiet)

let bench_cmd =
  Cmd.group
    (Cmd.info "bench"
       ~doc:
         "The continuous benchmarking flywheel: import snapshots into a \
          normalized time series, render trend reports, gate regressions, \
          and replay the minimized-repro corpus.")
    [ bench_import_cmd; bench_report_cmd; bench_gate_cmd; bench_corpus_cmd ]

let main =
  Cmd.group
    (Cmd.info "bromc" ~version:"1.0.0"
       ~doc:
         "Branch-reordering MiniC compiler (PLDI 1998 reproduction: Yang, Uh \
          & Whalley).")
    [ compile_cmd; run_cmd; reorder_cmd; suite_cmd; fuzz_cmd; lint_cmd;
      dot_cmd; workloads_cmd; cache_cmd; serve_cmd; replay_cmd; bench_cmd ]

let () = exit (Cmd.eval main)
